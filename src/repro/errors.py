"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch the whole family with a
single ``except`` clause while still letting programming errors
(``TypeError`` from NumPy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ValidationError",
    "ConfigError",
    "SimulationError",
    "DatasetError",
    "ReproIOError",
    "TimeoutExceeded",
    "CorruptStoreError",
    "WorkspaceExhausted",
    "BackendUnavailable",
    "DegradedExecution",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EXIT_DATA",
    "EXIT_IO",
    "EXIT_TIMEOUT",
    "EXIT_INTERRUPTED",
    "exit_code_for",
    "format_cli_error",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """Operands have incompatible shapes (e.g. SpMM with mismatched K)."""


class FormatError(ReproError, ValueError):
    """A sparse container's internal arrays violate the format invariants.

    Raised by the ``validate()`` methods of :class:`repro.sparse.COOMatrix`,
    :class:`repro.sparse.CSRMatrix` and :class:`repro.sparse.CSCMatrix`, and
    by the MatrixMarket parser on malformed input.
    """


class ValidationError(ReproError, ValueError):
    """An argument value is outside its documented domain."""


class ConfigError(ReproError, ValueError):
    """An experiment or device configuration is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """The GPU performance model was driven into an impossible state."""


class DatasetError(ReproError, RuntimeError):
    """A dataset generator or corpus entry could not produce a matrix."""


class ReproIOError(ReproError, OSError):
    """A filesystem operation failed, annotated with the path involved.

    Raised instead of letting a raw :class:`OSError` escape library entry
    points (e.g. :func:`repro.sparse.read_matrix_market`), so callers can
    catch the :class:`ReproError` family while ``exit_code_for`` still
    routes the failure to :data:`EXIT_IO` via the ``OSError`` base.
    """


class TimeoutExceeded(ReproError, RuntimeError):
    """A pipeline stage blew its cooperative deadline.

    Carries the stage name and the budget for diagnostics; raised by
    :meth:`repro.resilience.Deadline.check` from polling points inside
    MinHash, LSH and the clustering loop, and by injected stage-timeout
    faults.  The degradation ladder in :func:`repro.reorder.build_plan`
    catches it and falls back to a cheaper rung.
    """

    def __init__(self, message: str, *, stage: str = "", budget_s: float = 0.0):
        super().__init__(message)
        self.stage = stage
        self.budget_s = budget_s


class CorruptStoreError(ReproError, RuntimeError):
    """A plan-store entry failed checksum or structural validation.

    The disk tier quarantines the entry and treats the lookup as a miss;
    the error only escapes when a caller reads an entry directly (e.g.
    ``repro doctor`` inspecting quarantine contents).
    """


class WorkspaceExhausted(ReproError, MemoryError):
    """A workspace pool could not serve a scratch lease within its cap.

    :class:`repro.kernels.KernelSession` catches this and falls back to
    direct allocation (bitwise-identical results, no pooling benefit).
    """


class BackendUnavailable(ReproError, RuntimeError):
    """A compiled kernel backend could not be imported or compiled.

    Raised by :func:`repro.kernels.backends.resolve_backend` in strict
    mode and by backend ``compile`` implementations (including the
    ``backend.compile`` injected fault).  Degradable callers — plan
    builds, :class:`repro.kernels.KernelSession` — catch it and fall back
    to the always-available ``numpy`` backend, recording the step in the
    plan's ``backend_provenance``.
    """


class DegradedExecution(UserWarning):
    """Warning category for degraded-but-correct execution.

    Emitted when the degradation ladder settles on a rung below ``full``
    or a kernel session falls back from pooled to direct allocation.
    Results remain correct; performance characteristics do not.
    """


# ----------------------------------------------------------------------
# CLI exit-code mapping
# ----------------------------------------------------------------------
# The ``repro`` CLI routes every library error through this table so that
# scripts can branch on *why* a command failed instead of parsing
# tracebacks.  ``EXIT_USAGE`` matches argparse's own code for bad flags.

EXIT_OK = 0  #: success
EXIT_FAILURE = 1  #: generic failure (lint findings, per-item build failures)
EXIT_USAGE = 2  #: bad argument values (ValidationError/ShapeError/ConfigError)
EXIT_DATA = 3  #: malformed input data (FormatError/DatasetError/CorruptStoreError)
EXIT_IO = 4  #: filesystem/OS errors
EXIT_TIMEOUT = 5  #: a stage deadline expired and no ladder rung absorbed it
EXIT_INTERRUPTED = 130  #: SIGINT convention (128 + signal 2)

_EXIT_CODES: tuple[tuple[type, int], ...] = (
    (ValidationError, EXIT_USAGE),
    (ShapeError, EXIT_USAGE),
    (ConfigError, EXIT_USAGE),
    (TimeoutExceeded, EXIT_TIMEOUT),
    (CorruptStoreError, EXIT_DATA),
    (FormatError, EXIT_DATA),
    (DatasetError, EXIT_DATA),
    (OSError, EXIT_IO),
    (KeyboardInterrupt, EXIT_INTERRUPTED),
)


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI exit code documented above.

    Unrecognised :class:`ReproError` subclasses (and anything else) map to
    :data:`EXIT_FAILURE`.
    """
    for exc_type, code in _EXIT_CODES:
        if isinstance(exc, exc_type):
            return code
    return EXIT_FAILURE


def format_cli_error(command: str, exc: BaseException) -> str:
    """One-line structured error message for CLI stderr output."""
    return f"repro {command}: error ({type(exc).__name__}): {exc}"
