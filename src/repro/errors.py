"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch the whole family with a
single ``except`` clause while still letting programming errors
(``TypeError`` from NumPy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ValidationError",
    "ConfigError",
    "SimulationError",
    "DatasetError",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EXIT_DATA",
    "EXIT_IO",
    "exit_code_for",
    "format_cli_error",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """Operands have incompatible shapes (e.g. SpMM with mismatched K)."""


class FormatError(ReproError, ValueError):
    """A sparse container's internal arrays violate the format invariants.

    Raised by the ``validate()`` methods of :class:`repro.sparse.COOMatrix`,
    :class:`repro.sparse.CSRMatrix` and :class:`repro.sparse.CSCMatrix`, and
    by the MatrixMarket parser on malformed input.
    """


class ValidationError(ReproError, ValueError):
    """An argument value is outside its documented domain."""


class ConfigError(ReproError, ValueError):
    """An experiment or device configuration is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """The GPU performance model was driven into an impossible state."""


class DatasetError(ReproError, RuntimeError):
    """A dataset generator or corpus entry could not produce a matrix."""


# ----------------------------------------------------------------------
# CLI exit-code mapping
# ----------------------------------------------------------------------
# The ``repro`` CLI routes every library error through this table so that
# scripts can branch on *why* a command failed instead of parsing
# tracebacks.  ``EXIT_USAGE`` matches argparse's own code for bad flags.

EXIT_OK = 0  #: success
EXIT_FAILURE = 1  #: generic failure (lint findings, per-item build failures)
EXIT_USAGE = 2  #: bad argument values (ValidationError/ShapeError/ConfigError)
EXIT_DATA = 3  #: malformed input data (FormatError/DatasetError)
EXIT_IO = 4  #: filesystem/OS errors

_EXIT_CODES: tuple[tuple[type, int], ...] = (
    (ValidationError, EXIT_USAGE),
    (ShapeError, EXIT_USAGE),
    (ConfigError, EXIT_USAGE),
    (FormatError, EXIT_DATA),
    (DatasetError, EXIT_DATA),
    (OSError, EXIT_IO),
)


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI exit code documented above.

    Unrecognised :class:`ReproError` subclasses (and anything else) map to
    :data:`EXIT_FAILURE`.
    """
    for exc_type, code in _EXIT_CODES:
        if isinstance(exc, exc_type):
            return code
    return EXIT_FAILURE


def format_cli_error(command: str, exc: BaseException) -> str:
    """One-line structured error message for CLI stderr output."""
    return f"repro {command}: error ({type(exc).__name__}): {exc}"
