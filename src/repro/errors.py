"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch the whole family with a
single ``except`` clause while still letting programming errors
(``TypeError`` from NumPy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ValidationError",
    "ConfigError",
    "SimulationError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """Operands have incompatible shapes (e.g. SpMM with mismatched K)."""


class FormatError(ReproError, ValueError):
    """A sparse container's internal arrays violate the format invariants.

    Raised by the ``validate()`` methods of :class:`repro.sparse.COOMatrix`,
    :class:`repro.sparse.CSRMatrix` and :class:`repro.sparse.CSCMatrix`, and
    by the MatrixMarket parser on malformed input.
    """


class ValidationError(ReproError, ValueError):
    """An argument value is outside its documented domain."""


class ConfigError(ReproError, ValueError):
    """An experiment or device configuration is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """The GPU performance model was driven into an impossible state."""


class DatasetError(ReproError, RuntimeError):
    """A dataset generator or corpus entry could not produce a matrix."""
