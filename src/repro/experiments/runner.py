"""Corpus experiment runner.

For each corpus matrix the runner builds the two execution plans (ASpT-NR:
both reordering rounds forced off; ASpT-RR: rounds gated by the §4
heuristics), costs all kernel variants at every requested ``K`` and emits
one :class:`~repro.experiments.records.MatrixRecord` per (matrix, K).

Matrices are independent, so the sweep parallelises at matrix grain —
the Python analogue of the paper's OpenMP preprocessing (§5.4).  Pass
``n_jobs > 1`` to fan out over a process pool; results are identical to
the sequential run (asserted in the tests) because each matrix's work is
fully deterministic and self-contained.  One caveat: ``preprocess_s`` is
per-matrix wall-clock inside its worker, so it remains comparable across
``n_jobs`` settings up to scheduler noise.

Sweeps are crash-safe when given a ``checkpoint`` path: every completed
matrix is journalled (:class:`repro.resilience.SweepJournal`) with a
single fsynced append, a mid-sweep ``KeyboardInterrupt`` flushes an
``interrupt`` marker before propagating, and ``resume=True`` replays the
completed records and recomputes only the matrices that were in flight
or never started — the final record set is identical to an uninterrupted
run (entries stay in corpus order either way).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.datasets.corpus import CorpusEntry, build_corpus
from repro.experiments.config import ExperimentConfig
from repro.experiments.records import MatrixRecord
from repro.gpu.executor import GPUExecutor
from repro.observability.tracing import span
from repro.reorder.pipeline import build_plan
from repro.util.log import get_logger

__all__ = ["run_experiment", "run_single_matrix"]

_log = get_logger("experiments")


def _plan_store(config: ExperimentConfig):
    """The run's plan cache, or None when caching is not configured."""
    if config.plan_cache_dir is None:
        return None
    from repro.planstore import PlanStore

    return PlanStore(cache_dir=config.plan_cache_dir)


def _run_entry(packed):
    """Process-pool worker: one corpus entry -> its records (picklable)."""
    entry, config = packed
    device, cost = config.effective_model()
    executor = GPUExecutor(device, cost, cache_mode=config.cache_mode)
    # Each worker opens its own store over the shared disk directory; the
    # memory tiers are per-process but the persistent tier is common.
    return run_single_matrix(entry, config, executor, plan_cache=_plan_store(config))


def run_single_matrix(
    entry: CorpusEntry,
    config: ExperimentConfig,
    executor: GPUExecutor,
    plan_cache=None,
) -> list[MatrixRecord]:
    """Evaluate one corpus entry at every ``K``; returns one record per K."""
    csr = entry.matrix
    with span("plan_nr", matrix=entry.name):
        plan_nr = build_plan(
            csr,
            replace(config.reorder, force_round1=False, force_round2=False),
            cache=plan_cache,
            resilience=config.resilience,
        )
    with span("plan_rr", matrix=entry.name):
        plan_rr = build_plan(
            csr, config.reorder, cache=plan_cache, resilience=config.resilience
        )
    if config.verify:
        plan_rr.validate()
        plan_nr.validate()
    degraded_parts = []
    if plan_nr.degraded:
        degraded_parts.append("nr: " + "; ".join(plan_nr.provenance))
    if plan_rr.degraded:
        degraded_parts.append("rr: " + "; ".join(plan_rr.provenance))
    degradation = " | ".join(degraded_parts)

    nr_view = plan_nr.cost_view()
    rr_view = plan_rr.cost_view()
    stats = plan_rr.stats
    # "Needs reordering" follows the paper's 416-matrix subset semantics:
    # a reordering round actually moved rows.  (A gate may open on e.g. a
    # diagonal matrix, but LSH finds nothing and the order stays identity —
    # such matrices belong with the non-reordered population.)
    identity = np.arange(csr.n_rows, dtype=np.int64)
    round1_changed = stats.round1_applied and not np.array_equal(
        plan_rr.row_order, identity
    )
    round2_changed = stats.round2_applied and not np.array_equal(
        plan_rr.remainder_order, identity
    )
    needs = round1_changed or round2_changed

    records = []
    for k in config.ks:
        records.append(
            MatrixRecord(
                name=entry.name,
                category=entry.category,
                expected_benefit=entry.expected_benefit,
                n_rows=csr.n_rows,
                n_cols=csr.n_cols,
                nnz=csr.nnz,
                k=k,
                spmm_cusparse_s=executor.spmm_cost(csr, k, "cusparse").time_s,
                spmm_aspt_nr_s=executor.spmm_cost(nr_view, k, "aspt").time_s,
                spmm_aspt_rr_s=executor.spmm_cost(rr_view, k, "aspt").time_s,
                sddmm_bidmach_s=executor.sddmm_cost(csr, k, "bidmach").time_s,
                sddmm_aspt_nr_s=executor.sddmm_cost(nr_view, k, "aspt").time_s,
                sddmm_aspt_rr_s=executor.sddmm_cost(rr_view, k, "aspt").time_s,
                needs_reordering=needs,
                round1_applied=stats.round1_applied,
                round2_applied=stats.round2_applied,
                round1_changed=round1_changed,
                round2_changed=round2_changed,
                delta_dense_ratio=stats.delta_dense_ratio,
                delta_avg_sim=stats.delta_avg_sim,
                dense_ratio_before=stats.dense_ratio_before,
                dense_ratio_after=stats.dense_ratio_after,
                preprocess_s=plan_rr.preprocessing_time,
                degradation=degradation,
                stage_seconds=dict(plan_rr.preprocess_seconds),
            )
        )
    return records


def run_experiment(
    config: ExperimentConfig | None = None,
    entries: list[CorpusEntry] | None = None,
    *,
    progress: bool = False,
    n_jobs: int = 1,
    checkpoint=None,
    resume: bool = False,
    trace=None,
) -> list[MatrixRecord]:
    """Run the full corpus experiment.

    Parameters
    ----------
    config:
        Experiment configuration (defaults mirror the paper's setup on the
        small corpus scale).
    entries:
        Optional pre-built corpus (e.g. real ``.mtx`` matrices); when
        omitted, :func:`repro.datasets.build_corpus` builds one from
        ``config``.
    progress:
        Log one line per matrix (sequential mode only).
    n_jobs:
        Worker processes (1 = in-process sequential).  Records come back
        in corpus order regardless.
    checkpoint:
        Optional journal path.  When set, every completed matrix is
        durably recorded so the sweep survives crashes and interrupts
        (see the module docstring).
    resume:
        With ``checkpoint``, replay completed matrices from the journal
        and compute only the rest.  The journal's config digest must
        match ``config`` (:class:`repro.errors.ConfigError` otherwise).
        Without an existing journal this is an ordinary fresh run.
    trace:
        Optional :class:`repro.observability.Tracer` installed for the
        duration of the sweep, collecting per-matrix and per-stage spans
        (per-stage timings additionally land in every record's
        ``stage_seconds``, traced or not).  Worker processes of a
        parallel run (``n_jobs > 1``) do not propagate the tracer — use
        sequential mode for a complete span tree.

    Returns
    -------
    list[MatrixRecord]
        ``len(entries) * len(config.ks)`` records, in corpus order.
    """
    config = config or ExperimentConfig()
    if entries is None:
        entries = build_corpus(config.scale, seed=config.seed, repeats=config.repeats)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")

    journal = None
    done: dict = {}
    if checkpoint is not None:
        from repro.resilience.checkpoint import SweepJournal

        if resume:
            journal, done = SweepJournal.resume_sweep(
                checkpoint, config, len(entries)
            )
            if done:
                _log.info(
                    "resuming: %d/%d matrices already journalled",
                    len(done),
                    len(entries),
                )
        else:
            journal = SweepJournal.start_sweep(checkpoint, config, len(entries))
    keys = [f"{i}:{entry.name}" for i, entry in enumerate(entries)]

    if trace is not None:
        trace.install()
    try:
        if n_jobs > 1:
            records = _run_parallel(config, entries, keys, done, journal, n_jobs)
        else:
            records = _run_sequential(config, entries, keys, done, journal, progress)
        if journal is not None:
            journal.mark_complete()
        return records
    except KeyboardInterrupt:
        # Flush the interrupt marker so `repro doctor` can tell a clean
        # Ctrl-C from a crash; the journal already holds every completed
        # matrix (one fsynced append each), so --resume loses nothing.
        if journal is not None:
            journal.mark_interrupted()
        raise
    finally:
        if journal is not None:
            journal.close()
        if trace is not None:
            trace.uninstall()


def _run_sequential(config, entries, keys, done, journal, progress):
    device, cost = config.effective_model()
    executor = GPUExecutor(device, cost, cache_mode=config.cache_mode)
    plan_cache = _plan_store(config)
    records: list[MatrixRecord] = []
    for i, entry in enumerate(entries):
        key = keys[i]
        if key in done:
            records.extend(MatrixRecord.from_dict(d) for d in done[key])
            continue
        if progress:
            _log.info(
                "[%d/%d] %s (%dx%d, nnz=%d)",
                i + 1,
                len(entries),
                entry.name,
                entry.matrix.n_rows,
                entry.matrix.n_cols,
                entry.matrix.nnz,
            )
        if journal is not None:
            journal.mark_started(key)
        with span("matrix", matrix=entry.name, nnz=entry.matrix.nnz):
            chunk = run_single_matrix(entry, config, executor, plan_cache=plan_cache)
        if journal is not None:
            journal.mark_done(key, [r.as_dict() for r in chunk])
        records.extend(chunk)
    return records


def _run_parallel(config, entries, keys, done, journal, n_jobs):
    from concurrent.futures import ProcessPoolExecutor

    pending = [(i, entry) for i, entry in enumerate(entries) if keys[i] not in done]
    chunks: dict[int, list[MatrixRecord]] = {
        i: [MatrixRecord.from_dict(d) for d in done[keys[i]]]
        for i in range(len(entries))
        if keys[i] in done
    }
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        if journal is not None:
            for i, _ in pending:  # the whole batch goes in flight at once
                journal.mark_started(keys[i])
        for (i, _), chunk in zip(
            pending, pool.map(_run_entry, ((entry, config) for _, entry in pending))
        ):
            if journal is not None:
                journal.mark_done(keys[i], [r.as_dict() for r in chunk])
            chunks[i] = chunk
    records: list[MatrixRecord] = []
    for i in range(len(entries)):
        records.extend(chunks[i])
    return records
