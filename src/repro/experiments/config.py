"""Experiment configuration, including the corpus/device co-scaling rule.

The paper's matrices satisfy >= 10K rows/columns and >= 100K non-zeros;
at K = 512 the dense operand is >= 20 MB — far larger than the P100's 4 MB
L2 — and kernel times are hundreds of microseconds to milliseconds, so
launch overheads are negligible.  The synthetic corpus shrinks matrix
dimensions for pure-Python tractability; to stay in the same *regime* the
device model must shrink with it, preserving the two ratios that govern
the results:

* ``dense-operand size / L2 capacity``  (whether reuse must be engineered),
* ``kernel time / launch overhead``     (whether fixed costs matter).

:func:`scale_model` divides ``l2_bytes`` and ``launch_overhead_s`` by the
corpus scale factor; everything else (bandwidth, efficiencies, thresholds)
is scale-free.  ``panel_height`` similarly shrinks so a panel covers the
same *fraction* of the matrix as a GPU-sized panel covers a paper-sized
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.gpu.costmodel import CostModelConfig
from repro.gpu.device import P100, DeviceSpec
from repro.reorder.pipeline import ReorderConfig
from repro.resilience.policy import ResiliencePolicy

__all__ = ["ExperimentConfig", "scale_model", "SCALE_FACTORS", "PANEL_HEIGHTS"]

#: Linear shrink factor of each corpus scale relative to paper-sized
#: matrices (rows ~2K at "small" vs ~12K+ in the paper).
SCALE_FACTORS: dict[str, float] = {
    "tiny": 24.0,
    "small": 6.0,
    "medium": 3.0,
    "paper": 1.0,
}

#: ASpT row-panel height per corpus scale (a GPU-scale panel of 64-128
#: rows on a 10K+-row matrix corresponds to a proportionally smaller panel
#: on a shrunken one).
PANEL_HEIGHTS: dict[str, int] = {
    "tiny": 8,
    "small": 16,
    "medium": 32,
    "paper": 64,
}


def scale_model(
    device: DeviceSpec, cost: CostModelConfig, factor: float
) -> tuple[DeviceSpec, CostModelConfig]:
    """Shrink the size-dependent model parameters by ``factor``.

    See the module docstring for the rationale.  ``factor = 1`` returns
    the inputs unchanged.
    """
    if factor <= 0:
        raise ConfigError(f"scale factor must be > 0, got {factor}")
    if factor == 1.0:  # reprolint: disable=RD201 -- sentinel check for the exact default, not an arithmetic comparison
        return device, cost
    scaled_device = device.with_overrides(
        l2_bytes=max(4096, int(device.l2_bytes / factor))
    )
    # Panel count shrinks only linearly while traffic shrinks with rows *
    # K-independent density, so per-panel fixed costs must shrink with the
    # same factor to keep overhead/traffic ratios in the paper regime.
    scaled_cost = cost.with_overrides(
        launch_overhead_s=cost.launch_overhead_s / factor,
        panel_overhead_cycles=cost.panel_overhead_cycles / factor,
    )
    return scaled_device, scaled_cost


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a corpus run needs.

    Attributes
    ----------
    ks:
        Dense-operand widths; the paper uses (512, 1024).
    scale:
        Corpus scale passed to :func:`repro.datasets.build_corpus`.
    repeats:
        Seeded replicas per corpus specification.
    seed:
        Master corpus seed.
    device:
        Modelled GPU.
    cost:
        Cost-model constants.
    reorder:
        Reordering pipeline parameters.  ``panel_height`` here is the
        GPU-scale panel height used for all tiling in the experiments.
    cache_mode:
        ``"approx"`` (default, corpus-scale) or ``"exact"``.
    verify:
        When true, functionally validate each plan against the dense
        oracle (slow; for small corpora and CI).
    plan_cache_dir:
        When set, reordering decisions are cached in a
        :class:`repro.planstore.PlanStore` rooted at this directory, so
        sweeps that revisit a (pattern, config) pair skip the
        MinHash/LSH/clustering stages entirely.
    resilience:
        Optional :class:`repro.resilience.ResiliencePolicy`.  When set,
        every plan build in the sweep runs under its stage deadline and
        degradation ladder; degraded builds are recorded per matrix in
        :attr:`repro.experiments.MatrixRecord.degradation`.
    """

    ks: tuple[int, ...] = (512, 1024)
    scale: str = "small"
    repeats: int = 2
    seed: int = 2020
    device: DeviceSpec = P100
    cost: CostModelConfig = field(default_factory=CostModelConfig)
    reorder: ReorderConfig | None = None  #: None -> panel height from PANEL_HEIGHTS
    cache_mode: str = "approx"
    verify: bool = False
    auto_scale_model: bool = True  #: apply :func:`scale_model` for the corpus scale
    plan_cache_dir: str | None = None  #: persistent plan-store directory (optional)
    resilience: ResiliencePolicy | None = None  #: deadline/ladder policy (optional)

    def __post_init__(self):
        if not self.ks:
            raise ConfigError("ks must not be empty")
        if any(k <= 0 for k in self.ks):
            raise ConfigError(f"all ks must be > 0, got {self.ks}")
        if self.cache_mode not in ("approx", "exact"):
            raise ConfigError(f"cache_mode must be 'approx' or 'exact', got {self.cache_mode!r}")
        if self.scale not in SCALE_FACTORS:
            raise ConfigError(
                f"unknown scale {self.scale!r}; expected one of {sorted(SCALE_FACTORS)}"
            )
        if self.reorder is None:
            object.__setattr__(
                self, "reorder", ReorderConfig(panel_height=PANEL_HEIGHTS[self.scale])
            )

    def effective_model(self) -> tuple[DeviceSpec, CostModelConfig]:
        """The (device, cost) pair after optional corpus-scale shrinking."""
        if not self.auto_scale_model:
            return self.device, self.cost
        return scale_model(self.device, self.cost, SCALE_FACTORS[self.scale])
