"""Band-summary tables (paper Tables 1–4) and summary statistics.

All functions take a list of :class:`~repro.experiments.records.MatrixRecord`
(usually pre-filtered to one ``K`` and to the matrices *needing*
reordering, mirroring the paper's 416-matrix subset) and return plain
dictionaries; :func:`format_band_table` renders them for the terminal.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.records import MatrixRecord

__all__ = [
    "speedup_bands",
    "preprocessing_ratio_bands",
    "summary_stats",
    "format_band_table",
    "needing_reordering",
    "records_at_k",
    "category_breakdown",
    "format_category_table",
]

#: Band edges of Tables 1/2: slowdown, then speedup strata.
_SPEEDUP_BANDS = (
    ("slowdown 0%~10%", 0.90, 1.00),
    ("speedup 0%~10%", 1.00, 1.10),
    ("speedup 10%~50%", 1.10, 1.50),
    ("speedup 50%~100%", 1.50, 2.00),
    ("speedup >100%", 2.00, math.inf),
)

#: Band edges of Tables 3/4 (preprocessing / kernel time ratio).
_RATIO_BANDS = (
    ("0x~5x", 0.0, 5.0),
    ("5x~10x", 5.0, 10.0),
    ("10x~100x", 10.0, 100.0),
    (">100x", 100.0, math.inf),
)


def records_at_k(records: list[MatrixRecord], k: int) -> list[MatrixRecord]:
    """Filter records to one dense width."""
    return [r for r in records if r.k == k]


def needing_reordering(records: list[MatrixRecord]) -> list[MatrixRecord]:
    """The paper's evaluation subset: matrices where at least one
    reordering round ran (416 of 1084 in the paper)."""
    return [r for r in records if r.needs_reordering]


def _band_percentages(values: np.ndarray, bands) -> dict[str, float]:
    out = {}
    n = values.size
    for label, lo, hi in bands:
        if n == 0:
            out[label] = 0.0
            continue
        mask = (values >= lo) & (values < hi)
        out[label] = 100.0 * int(mask.sum()) / n
    return out


def speedup_bands(
    records: list[MatrixRecord], metric: str = "spmm_vs_best"
) -> dict[str, float]:
    """Percentage of matrices per speedup band.

    ``metric`` selects the comparison:

    * ``"spmm_vs_best"`` — Table 1: ASpT-RR vs max(cuSPARSE, ASpT-NR);
    * ``"sddmm_vs_nr"`` — Table 2: ASpT-RR vs ASpT-NR;
    * ``"spmm_nr_vs_cusparse"`` / ``"spmm_rr_vs_cusparse"`` — Fig. 8 series.

    Speedups below 0.9 are clamped into the lowest band (the paper's
    tables start at "slowdown 0%~10%" because the §4 gates keep the
    slowdown bounded).
    """
    getter = {
        "spmm_vs_best": lambda r: r.spmm_rr_speedup_vs_best,
        "sddmm_vs_nr": lambda r: r.sddmm_rr_speedup,
        "spmm_nr_vs_cusparse": lambda r: r.spmm_nr_speedup_vs_cusparse,
        "spmm_rr_vs_cusparse": lambda r: r.spmm_rr_speedup_vs_cusparse,
    }[metric]
    values = np.array([getter(r) for r in records], dtype=np.float64)
    values = np.maximum(values, 0.90 + 1e-12)  # clamp into the lowest band
    return _band_percentages(values, _SPEEDUP_BANDS)


def preprocessing_ratio_bands(
    records: list[MatrixRecord], op: str = "spmm"
) -> dict[str, float]:
    """Tables 3/4: preprocessing-to-kernel-time ratio distribution."""
    values = np.array([r.preprocess_ratio(op) for r in records], dtype=np.float64)
    return _band_percentages(values, _RATIO_BANDS)


def summary_stats(
    records: list[MatrixRecord], metric: str = "spmm_vs_best"
) -> dict[str, float]:
    """Max / median / geometric-mean speedups (the §5.2/§5.3 headline
    numbers: e.g. 'up to 2.91x and average 1.19x for SpMM')."""
    getter = {
        "spmm_vs_best": lambda r: r.spmm_rr_speedup_vs_best,
        "sddmm_vs_nr": lambda r: r.sddmm_rr_speedup,
        "spmm_nr_vs_cusparse": lambda r: r.spmm_nr_speedup_vs_cusparse,
    }[metric]
    values = np.array([getter(r) for r in records], dtype=np.float64)
    if values.size == 0:
        return {"n": 0, "max": 0.0, "median": 0.0, "geomean": 0.0}
    return {
        "n": int(values.size),
        "max": float(values.max()),
        "median": float(np.median(values)),
        "geomean": float(np.exp(np.log(values).mean())),
    }


def format_band_table(
    title: str, per_k: dict[int, dict[str, float]]
) -> str:
    """Render a band table with one column per K, paper-style.

    ``per_k`` maps K -> band dict (as returned by :func:`speedup_bands`).
    """
    ks = sorted(per_k)
    if not ks:
        return f"{title}\n(no data)"
    bands = list(per_k[ks[0]].keys())
    width = max(len(b) for b in bands) + 2
    header = " " * width + "".join(f"K={k:<10}" for k in ks)
    lines = [title, header, "-" * len(header)]
    for band in bands:
        cells = "".join(f"{per_k[k][band]:>6.1f}%    " for k in ks)
        lines.append(f"{band:<{width}}{cells}")
    return "\n".join(lines)


def category_breakdown(
    records: list[MatrixRecord], metric: str = "spmm_vs_best"
) -> dict[str, dict]:
    """Per-structure-class summary statistics.

    Not a paper table — the paper reports population aggregates — but the
    natural question a reader asks of Fig. 9 is *which* matrices benefit;
    the synthetic corpus can answer it by construction.  Returns
    ``{category: summary_stats(...)}`` ordered by descending geomean.
    """
    by_cat: dict[str, list[MatrixRecord]] = {}
    for r in records:
        by_cat.setdefault(r.category, []).append(r)
    out = {cat: summary_stats(recs, metric) for cat, recs in by_cat.items()}
    return dict(
        sorted(out.items(), key=lambda kv: kv[1]["geomean"], reverse=True)
    )


def format_category_table(title: str, breakdown: dict[str, dict]) -> str:
    """Render a :func:`category_breakdown` result."""
    if not breakdown:
        return f"{title}\n(no data)"
    lines = [
        title,
        f"{'category':<16}{'n':>4}{'geomean':>9}{'median':>8}{'max':>7}",
    ]
    for cat, stats in breakdown.items():
        lines.append(
            f"{cat:<16}{stats['n']:>4}{stats['geomean']:>8.2f}x"
            f"{stats['median']:>7.2f}x{stats['max']:>6.2f}x"
        )
    return "\n".join(lines)
