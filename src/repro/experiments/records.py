"""Result records and their (de)serialisation.

One :class:`MatrixRecord` holds everything the tables and figures need for
one (matrix, K) combination, so a corpus run can be saved to JSON once and
every presentation layer replayed from disk.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

__all__ = ["MatrixRecord", "save_records", "load_records"]


@dataclass(frozen=True)
class MatrixRecord:
    """Modelled results for one matrix at one dense width ``k``.

    Times are modelled kernel seconds; ``preprocess_s`` is measured
    wall-clock of the reordering pipeline (the paper reports these two
    separately, and so do we).
    """

    name: str
    category: str
    expected_benefit: str
    n_rows: int
    n_cols: int
    nnz: int
    k: int
    # --- SpMM kernel times (s) ---
    spmm_cusparse_s: float
    spmm_aspt_nr_s: float
    spmm_aspt_rr_s: float
    # --- SDDMM kernel times (s) ---
    sddmm_bidmach_s: float
    sddmm_aspt_nr_s: float
    sddmm_aspt_rr_s: float
    # --- reordering metadata ---
    needs_reordering: bool  #: a reordering round ran AND moved at least one row
    round1_applied: bool
    round2_applied: bool
    round1_changed: bool
    round2_changed: bool
    delta_dense_ratio: float
    delta_avg_sim: float
    dense_ratio_before: float
    dense_ratio_after: float
    preprocess_s: float
    #: Degradation-ladder summary when a plan build settled below the
    #: ``full`` rung (e.g. ``"rr: full: TimeoutExceeded: ...; round1-only:
    #: ok"``); empty for clean builds.  Defaulted so records saved before
    #: this field existed still load.
    degradation: str = ""
    #: Per-stage preprocessing wall-clock seconds of the reordered plan
    #: build (``lsh1``/``cluster1``/``tile``/... — the
    #: ``ExecutionPlan.preprocess_seconds`` breakdown), landed here so
    #: sweep records carry stage attribution, not just the total.
    #: Defaulted so records saved before this field existed still load.
    stage_seconds: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # derived quantities used by the tables/figures
    # ------------------------------------------------------------------
    @property
    def spmm_flops(self) -> float:
        """Useful FLOPs of one SpMM (``2 * nnz * K``)."""
        return 2.0 * self.nnz * self.k

    @property
    def sddmm_flops(self) -> float:
        """Useful FLOPs of one SDDMM (``2 * nnz * K + nnz``)."""
        return 2.0 * self.nnz * self.k + self.nnz

    def spmm_gflops(self, variant: str) -> float:
        """Modelled SpMM throughput for ``variant`` in GFLOP/s."""
        t = {
            "cusparse": self.spmm_cusparse_s,
            "aspt_nr": self.spmm_aspt_nr_s,
            "aspt_rr": self.spmm_aspt_rr_s,
        }[variant]
        return self.spmm_flops / t / 1e9

    def sddmm_gflops(self, variant: str) -> float:
        """Modelled SDDMM throughput for ``variant`` in GFLOP/s."""
        t = {
            "bidmach": self.sddmm_bidmach_s,
            "aspt_nr": self.sddmm_aspt_nr_s,
            "aspt_rr": self.sddmm_aspt_rr_s,
        }[variant]
        return self.sddmm_flops / t / 1e9

    @property
    def spmm_rr_speedup_vs_best(self) -> float:
        """Table 1 metric: ASpT-RR vs the faster of cuSPARSE / ASpT-NR."""
        return min(self.spmm_cusparse_s, self.spmm_aspt_nr_s) / self.spmm_aspt_rr_s

    @property
    def sddmm_rr_speedup(self) -> float:
        """Table 2 metric: ASpT-RR vs ASpT-NR."""
        return self.sddmm_aspt_nr_s / self.sddmm_aspt_rr_s

    @property
    def spmm_nr_speedup_vs_cusparse(self) -> float:
        """Fig. 8 series: ASpT-NR vs cuSPARSE."""
        return self.spmm_cusparse_s / self.spmm_aspt_nr_s

    @property
    def spmm_rr_speedup_vs_cusparse(self) -> float:
        """Fig. 8 series: ASpT-RR vs cuSPARSE."""
        return self.spmm_cusparse_s / self.spmm_aspt_rr_s

    def preprocess_ratio(self, op: str) -> float:
        """Tables 3/4 metric: preprocessing time over one kernel time."""
        kernel = self.spmm_aspt_rr_s if op == "spmm" else self.sddmm_aspt_rr_s
        return self.preprocess_s / kernel if kernel > 0 else float("inf")

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialisation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "MatrixRecord":
        """Inverse of :meth:`as_dict`."""
        return cls(**d)


def save_records(records: list[MatrixRecord], path) -> None:
    """Write records as a JSON array (atomically via a temp file)."""
    tmp = f"{os.fspath(path)}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump([r.as_dict() for r in records], fh, indent=1)
    os.replace(tmp, path)


def load_records(path) -> list[MatrixRecord]:
    """Read records written by :func:`save_records`."""
    with open(path, encoding="utf-8") as fh:
        return [MatrixRecord.from_dict(d) for d in json.load(fh)]
