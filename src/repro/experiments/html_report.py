"""Self-contained HTML report: tables + embedded SVG figures.

``repro report --html report.html`` renders the whole paper-vs-measured
story as one portable file — band tables, per-category breakdown, headline
statistics and inline SVG renderings of Figs. 8–12 — using the same role
tokens as :mod:`repro.viz` (light and dark palettes via
``prefers-color-scheme``; the figures themselves are embedded in the mode
requested at generation time).
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.experiments.figures import (
    fig8_speedup_histogram,
    fig9_effectiveness_scatter,
    fig10_throughput_series,
    fig11_throughput_series,
    fig12_preprocessing_times,
)
from repro.experiments.records import MatrixRecord
from repro.experiments.tables import (
    category_breakdown,
    needing_reordering,
    preprocessing_ratio_bands,
    records_at_k,
    speedup_bands,
    summary_stats,
)
from repro.viz import figure_svg

__all__ = ["render_html_report"]

_CSS = """
:root {
  --surface: #fcfcfb; --text1: #0b0b0b; --text2: #52514e; --grid: #e9e7e2;
}
@media (prefers-color-scheme: dark) {
  :root { --surface: #1a1a19; --text1: #ffffff; --text2: #c3c2b7; --grid: #32312f; }
}
body { background: var(--surface); color: var(--text1);
       font-family: Helvetica, Arial, sans-serif; max-width: 860px;
       margin: 2rem auto; padding: 0 1rem; line-height: 1.45; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.8rem 0; font-size: 0.9rem; }
th, td { border: 1px solid var(--grid); padding: 4px 10px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--text2); font-weight: 600; }
figure { margin: 1rem 0; }
figcaption { color: var(--text2); font-size: 0.85rem; margin-top: 0.3rem; }
.note { color: var(--text2); font-size: 0.9rem; }
"""


def _band_table(title: str, per_k: dict[int, dict[str, float]]) -> str:
    ks = sorted(per_k)
    if not ks:
        return ""
    head = "".join(f"<th>K={k}</th>" for k in ks)
    rows = "".join(
        "<tr><td>{}</td>{}</tr>".format(
            escape(band),
            "".join(f"<td>{per_k[k][band]:.1f}%</td>" for k in ks),
        )
        for band in per_k[ks[0]]
    )
    return (
        f"<h2>{escape(title)}</h2>"
        f"<table><tr><th>band</th>{head}</tr>{rows}</table>"
    )


def _stats_table(title: str, per_k: dict[int, dict]) -> str:
    rows = "".join(
        f"<tr><td>K={k}</td><td>{s['n']}</td><td>{s['max']:.2f}x</td>"
        f"<td>{s['median']:.2f}x</td><td>{s['geomean']:.2f}x</td></tr>"
        for k, s in sorted(per_k.items())
    )
    return (
        f"<p class='note'>{escape(title)}</p>"
        "<table><tr><th></th><th>n</th><th>max</th><th>median</th>"
        f"<th>geomean</th></tr>{rows}</table>"
    )


def _category_table(breakdown: dict[str, dict]) -> str:
    rows = "".join(
        f"<tr><td>{escape(cat)}</td><td>{s['n']}</td><td>{s['geomean']:.2f}x</td>"
        f"<td>{s['median']:.2f}x</td><td>{s['max']:.2f}x</td></tr>"
        for cat, s in breakdown.items()
    )
    return (
        "<h2>Which structures benefit (K=512)</h2>"
        "<table><tr><th>category</th><th>n</th><th>geomean</th>"
        f"<th>median</th><th>max</th></tr>{rows}</table>"
    )


def render_html_report(
    records: list[MatrixRecord],
    *,
    ks: tuple[int, ...] = (512, 1024),
    mode: str = "light",
    title: str = "Row-reordering SpMM/SDDMM — paper vs. measured",
) -> str:
    """Render the full report as one self-contained HTML document."""
    subset = needing_reordering(records)
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        "<p class='note'>Kernel times are outputs of the P100 performance "
        "model (docs/MODEL.md); preprocessing is measured wall-clock. "
        "Shapes — who wins, by what factor — are the reproduction targets; "
        "see DESIGN.md for the substitution arguments.</p>",
    ]

    t1 = {k: speedup_bands(records_at_k(subset, k), "spmm_vs_best") for k in ks}
    parts.append(_band_table("Table 1 — SpMM: ASpT-RR vs best(cuSPARSE, ASpT-NR)", t1))
    parts.append(_stats_table(
        "Paper: max 2.73x/2.91x, median 1.12x/1.14x, geomean 1.17x/1.19x",
        {k: summary_stats(records_at_k(subset, k), "spmm_vs_best") for k in ks},
    ))

    parts.append(_category_table(category_breakdown(records_at_k(records, ks[0]))))

    t2 = {k: speedup_bands(records_at_k(subset, k), "sddmm_vs_nr") for k in ks}
    parts.append(_band_table("Table 2 — SDDMM: ASpT-RR vs ASpT-NR", t2))
    parts.append(_stats_table(
        "Paper: max 3.19x/2.95x, median 1.45x, geomean 1.48x/1.49x",
        {k: summary_stats(records_at_k(subset, k), "sddmm_vs_nr") for k in ks},
    ))

    for op, label in (("spmm", "Table 3"), ("sddmm", "Table 4")):
        bands = {
            k: preprocessing_ratio_bands(records_at_k(subset, k), op) for k in ks
        }
        parts.append(_band_table(
            f"{label} — preprocessing / {op.upper()} kernel-time ratio", bands
        ))

    figures = [
        (8, fig8_speedup_histogram(records, ks[0]), "Fig 8 — speedup bands vs cuSPARSE"),
        (9, fig9_effectiveness_scatter(records, ks[0]), "Fig 9 — effectiveness plane"),
        (10, fig10_throughput_series(records, ks[0]), "Fig 10 — SpMM throughput"),
        (11, fig11_throughput_series(records, ks[0]), "Fig 11 — SDDMM throughput"),
        (12, fig12_preprocessing_times(records), "Fig 12 — preprocessing time"),
    ]
    parts.append("<h2>Figures</h2>")
    for number, data, caption in figures:
        svg = figure_svg(number, data, mode=mode)
        parts.append(f"<figure>{svg}<figcaption>{escape(caption)}</figcaption></figure>")

    parts.append("</body></html>")
    return "\n".join(parts)
