"""EXPERIMENTS.md generation: paper-vs-measured for every table and figure."""

from __future__ import annotations

from repro.experiments.records import MatrixRecord
from repro.experiments.tables import (
    category_breakdown,
    format_band_table,
    format_category_table,
    needing_reordering,
    preprocessing_ratio_bands,
    records_at_k,
    speedup_bands,
    summary_stats,
)

__all__ = ["render_experiments_markdown"]

_PAPER_CLAIMS = """\
## Paper headline claims (P100, 1084 matrices, 416 needing reordering)

| claim | paper value |
|---|---|
| SpMM max speedup (ASpT-RR vs best of cuSPARSE/ASpT-NR) | 2.73x (K=512), 2.91x (K=1024) |
| SpMM median speedup | 1.12x / 1.14x |
| SpMM geometric-mean speedup | 1.17x / 1.19x |
| SDDMM max speedup (ASpT-RR vs ASpT-NR) | 3.19x / 2.95x |
| SDDMM median speedup | 1.45x / 1.45x |
| SDDMM geometric-mean speedup | 1.48x / 1.49x |
| Matrices improved for SpMM, K=512 (Fig. 9) | 613 / 1084 |
| METIS vertex reordering | slower on all matrices |
| Preprocessing (Fig. 12) | 157 ms – 298 s, mean 69.38 s, median 59.58 s |
"""


def _stats_line(stats: dict) -> str:
    return (
        f"n={stats['n']}, max={stats['max']:.2f}x, "
        f"median={stats['median']:.2f}x, geomean={stats['geomean']:.2f}x"
    )


def render_experiments_markdown(
    records: list[MatrixRecord],
    ks: tuple[int, ...] = (512, 1024),
    extra_sections: list[str] | None = None,
) -> str:
    """Assemble the EXPERIMENTS.md body from a finished corpus run.

    Absolute seconds/GFLOPs come from the performance model; the document
    therefore reports *shape* comparisons (who wins, by what factor, how
    the mass distributes over bands), which is what the model preserves.
    """
    lines = [
        "# EXPERIMENTS — paper vs. measured (modelled P100)",
        "",
        "Produced by `repro.experiments` (see DESIGN.md for the experiment",
        "index and the substitution notes; absolute numbers are model",
        "outputs, shapes are the reproduction target).",
        "",
        _PAPER_CLAIMS,
        "## Measured on the synthetic corpus",
        "",
    ]
    total = len({r.name for r in records})
    subset = len({r.name for r in needing_reordering(records)})
    lines.append(f"Corpus: {total} matrices; {subset} need reordering per the §4 gates.")
    lines.append("")

    # Degradation-ladder transparency: a resilience policy may have built
    # some plans below the `full` rung; those results are correct but not
    # comparable on preprocessing effectiveness, so the report says which.
    degraded = sorted({r.name for r in records if r.degradation})
    if degraded:
        lines.append(
            f"**Degraded builds**: {len(degraded)}/{total} matrices settled "
            "below the `full` degradation-ladder rung (results remain "
            "correct; reordering effectiveness is not comparable for them):"
        )
        lines.append("")
        by_name = {r.name: r.degradation for r in records if r.degradation}
        for name in degraded:
            lines.append(f"- `{name}`: {by_name[name]}")
        lines.append("")

    # Tables 1/2 + headline stats.
    t1 = {
        k: speedup_bands(needing_reordering(records_at_k(records, k)), "spmm_vs_best")
        for k in ks
    }
    lines.append("### Table 1 — SpMM: ASpT-RR vs best(cuSPARSE, ASpT-NR)")
    lines.append("```")
    lines.append(format_band_table("", t1))
    for k in ks:
        stats = summary_stats(needing_reordering(records_at_k(records, k)), "spmm_vs_best")
        lines.append(f"K={k}: {_stats_line(stats)}")
    lines.append("```")
    lines.append("")

    lines.append("### Which structures benefit (per-category, K=512)")
    lines.append("")
    lines.append("```")
    lines.append(
        format_category_table(
            "SpMM: ASpT-RR vs best(cuSPARSE, ASpT-NR)",
            category_breakdown(records_at_k(records, ks[0])),
        )
    )
    lines.append("```")
    lines.append("")

    t2 = {
        k: speedup_bands(needing_reordering(records_at_k(records, k)), "sddmm_vs_nr")
        for k in ks
    }
    lines.append("### Table 2 — SDDMM: ASpT-RR vs ASpT-NR")
    lines.append("")
    lines.append(
        "Deviation note: our traffic model prices SpMM and SDDMM nearly "
        "identically (same dense-operand access stream), so Table 2 tracks "
        "Table 1 closely; the paper's SDDMM gains are larger across the "
        "board (median 1.45x vs 1.12x), a kernel-internal effect the "
        "traffic model does not capture."
    )
    lines.append("```")
    lines.append(format_band_table("", t2))
    for k in ks:
        stats = summary_stats(needing_reordering(records_at_k(records, k)), "sddmm_vs_nr")
        lines.append(f"K={k}: {_stats_line(stats)}")
    lines.append("```")
    lines.append("")

    # Tables 3/4.
    lines.append(
        "Tables 3/4 caveat: preprocessing here is single-process Python "
        "wall-clock while kernel times are model outputs for a GPU, so the "
        "absolute ratios sit orders of magnitude above the paper's "
        "C++/silicon ratios.  The reproducible shape — checked by the "
        "benches — is that doubling K roughly halves the ratio (kernel "
        "time grows with K, preprocessing does not)."
    )
    lines.append("")
    import numpy as np

    for op, label in (("spmm", "Table 3"), ("sddmm", "Table 4")):
        bands = {
            k: preprocessing_ratio_bands(needing_reordering(records_at_k(records, k)), op)
            for k in ks
        }
        lines.append(f"### {label} — preprocessing / {op.upper()} kernel-time ratio")
        lines.append("```")
        lines.append(format_band_table("", bands))
        for k in ks:
            subset = needing_reordering(records_at_k(records, k))
            mean_ratio = float(np.mean([r.preprocess_ratio(op) for r in subset])) if subset else 0.0
            lines.append(f"K={k}: mean ratio {mean_ratio:.0f}x")
        lines.append("```")
        lines.append("")

    if extra_sections:
        lines.extend(extra_sections)
    return "\n".join(lines)
