"""Experiment harness: regenerate every table and figure of the paper.

Layered as data -> records -> presentation:

* :mod:`repro.experiments.config` / :mod:`repro.experiments.runner` run the
  corpus through the pipeline + performance model and produce
  :class:`repro.experiments.MatrixRecord` rows;
* :mod:`repro.experiments.tables` compute the paper's Tables 1–4 (band
  summaries, geometric means);
* :mod:`repro.experiments.figures` compute the data series of Figs. 8–12
  and the §5.2 METIS comparison, with ASCII renderings for the terminal;
* :mod:`repro.experiments.report` assembles the paper-vs-measured
  EXPERIMENTS.md.

Per-experiment mapping lives in DESIGN.md §4.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.records import MatrixRecord, load_records, save_records
from repro.experiments.runner import run_experiment
from repro.experiments.tables import (
    category_breakdown,
    format_band_table,
    format_category_table,
    preprocessing_ratio_bands,
    speedup_bands,
    summary_stats,
)
from repro.experiments.figures import (
    fig8_speedup_histogram,
    fig9_effectiveness_scatter,
    fig10_throughput_series,
    fig11_throughput_series,
    fig12_preprocessing_times,
    metis_comparison,
)
from repro.experiments.html_report import render_html_report
from repro.experiments.report import render_experiments_markdown

__all__ = [
    "ExperimentConfig",
    "MatrixRecord",
    "load_records",
    "save_records",
    "run_experiment",
    "speedup_bands",
    "preprocessing_ratio_bands",
    "summary_stats",
    "format_band_table",
    "category_breakdown",
    "format_category_table",
    "fig8_speedup_histogram",
    "fig9_effectiveness_scatter",
    "fig10_throughput_series",
    "fig11_throughput_series",
    "fig12_preprocessing_times",
    "metis_comparison",
    "render_experiments_markdown",
    "render_html_report",
]
