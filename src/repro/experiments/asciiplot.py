"""Minimal ASCII plotting for terminal figure output.

The figure modules emit raw data series (for downstream plotting tools) and
use these helpers to also render a quick-look chart in the terminal, so the
benches can display Fig. 9/10-style output without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_scatter", "ascii_lines", "ascii_histogram"]


def _grid(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _render(grid: list[list[str]]) -> str:
    return "\n".join("".join(row) for row in grid)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    marks: list[str] | None = None,
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
) -> str:
    """Scatter plot; ``marks`` gives a per-point character (default ``*``)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0:
        return f"{title}\n(no data)"
    xmin, xmax = float(x.min()), float(x.max())
    ymin, ymax = float(y.min()), float(y.max())
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = _grid(width, height)
    for i in range(x.size):
        col = int((x[i] - xmin) / xspan * (width - 1))
        row = height - 1 - int((y[i] - ymin) / yspan * (height - 1))
        grid[row][col] = (marks[i] if marks else "*")[:1]
    body = _render(grid)
    header = f"{title}\n" if title else ""
    footer = (
        f"\nx: [{xmin:.3g}, {xmax:.3g}]  y: [{ymin:.3g}, {ymax:.3g}]"
    )
    return header + body + footer


def ascii_lines(
    series: dict[str, np.ndarray],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Overlayed line series (x is the index).  Each series gets the first
    character of its label as the plot mark."""
    if not series:
        return f"{title}\n(no data)"
    ys = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    if log_y:
        ys = {k: np.log10(np.maximum(v, 1e-30)) for k, v in ys.items()}
    all_vals = np.concatenate(list(ys.values()))
    ymin, ymax = float(all_vals.min()), float(all_vals.max())
    yspan = (ymax - ymin) or 1.0
    n = max(v.size for v in ys.values())
    grid = _grid(width, height)
    for label, v in ys.items():
        mark = label[0]
        for i in range(v.size):
            col = int(i / max(n - 1, 1) * (width - 1))
            row = height - 1 - int((v[i] - ymin) / yspan * (height - 1))
            grid[row][col] = mark
    legend = "  ".join(f"{k[0]}={k}" for k in ys)
    scale = "log10 " if log_y else ""
    header = f"{title}\n" if title else ""
    return f"{header}{_render(grid)}\n{scale}y: [{ymin:.3g}, {ymax:.3g}]  {legend}"


def ascii_histogram(
    labels: list[str], values: np.ndarray, *, width: int = 50, title: str = ""
) -> str:
    """Horizontal bar chart of percentages/counts."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return f"{title}\n(no data)"
    vmax = float(values.max()) or 1.0
    label_w = max(len(s) for s in labels) + 1
    lines = [title] if title else []
    for label, v in zip(labels, values):
        bar = "#" * int(round(v / vmax * width))
        lines.append(f"{label:<{label_w}} {bar} {v:.1f}")
    return "\n".join(lines)
