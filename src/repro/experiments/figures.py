"""Figure data series (paper Figs. 8–12 and the §5.2 METIS comparison).

Every ``figN_*`` function returns a plain dict of arrays/lists (the data a
plotting tool would consume) plus a ``"text"`` key holding an ASCII
rendering for terminal display.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.vertex_reorder import apply_symmetric_order, bisection_order
from repro.datasets.corpus import CorpusEntry
from repro.experiments.asciiplot import ascii_histogram, ascii_lines, ascii_scatter
from repro.experiments.records import MatrixRecord
from repro.experiments.tables import needing_reordering, records_at_k, speedup_bands
from repro.gpu.executor import GPUExecutor
from repro.reorder.pipeline import ReorderConfig, build_plan

__all__ = [
    "fig8_speedup_histogram",
    "fig9_effectiveness_scatter",
    "fig10_throughput_series",
    "fig11_throughput_series",
    "fig12_preprocessing_times",
    "metis_comparison",
]


def fig8_speedup_histogram(records: list[MatrixRecord], k: int) -> dict:
    """Fig. 8: distribution of SpMM speedups over cuSPARSE, for ASpT-NR
    and ASpT-RR, over *all* matrices."""
    recs = records_at_k(records, k)
    nr = speedup_bands(recs, "spmm_nr_vs_cusparse")
    rr = speedup_bands(recs, "spmm_rr_vs_cusparse")
    labels = list(nr.keys())
    text = "\n\n".join(
        [
            ascii_histogram(labels, np.array(list(nr.values())),
                            title=f"Fig 8 (K={k}): ASpT-NR vs cuSPARSE (% of matrices)"),
            ascii_histogram(labels, np.array(list(rr.values())),
                            title=f"Fig 8 (K={k}): ASpT-RR vs cuSPARSE (% of matrices)"),
        ]
    )
    return {"k": k, "bands_nr": nr, "bands_rr": rr, "text": text}


def fig9_effectiveness_scatter(records: list[MatrixRecord], k: int) -> dict:
    """Fig. 9: ΔDenseRatio vs ΔAvgSim, marked by SpMM speedup/slowdown
    (ASpT-RR vs ASpT-NR) — only matrices where reordering ran."""
    recs = needing_reordering(records_at_k(records, k))
    dx = np.array([r.delta_dense_ratio for r in recs])
    dy = np.array([r.delta_avg_sim for r in recs])
    speedup = np.array(
        [r.spmm_aspt_nr_s / r.spmm_aspt_rr_s for r in recs], dtype=np.float64
    )
    marks = ["+" if s >= 1.0 else "-" for s in speedup]
    n_improved = int((speedup >= 1.0).sum())
    text = ascii_scatter(
        dx,
        dy,
        marks,
        title=(
            f"Fig 9 (K={k}): x=dDenseRatio y=dAvgSim, '+'=speedup '-'=slowdown "
            f"({n_improved}/{len(recs)} improved)"
        ),
    )
    return {
        "k": k,
        "delta_dense_ratio": dx.tolist(),
        "delta_avg_sim": dy.tolist(),
        "speedup": speedup.tolist(),
        "n_improved": n_improved,
        "n_total": len(recs),
        "text": text,
    }


def _throughput_series(recs: list[MatrixRecord], op: str) -> dict[str, np.ndarray]:
    if op == "spmm":
        nr = np.array([r.spmm_gflops("aspt_nr") for r in recs])
        order = np.argsort(nr)
        return {
            "cusparse": np.array([recs[i].spmm_gflops("cusparse") for i in order]),
            "nr(aspt)": np.array([recs[i].spmm_gflops("aspt_nr") for i in order]),
            "rr(aspt)": np.array([recs[i].spmm_gflops("aspt_rr") for i in order]),
        }
    nr = np.array([r.sddmm_gflops("aspt_nr") for r in recs])
    order = np.argsort(nr)
    return {
        "nr(aspt)": np.array([recs[i].sddmm_gflops("aspt_nr") for i in order]),
        "rr(aspt)": np.array([recs[i].sddmm_gflops("aspt_rr") for i in order]),
    }


def fig10_throughput_series(records: list[MatrixRecord], k: int) -> dict:
    """Fig. 10: SpMM throughput (GFLOP/s), matrices needing reordering,
    sorted by ASpT-NR throughput."""
    recs = needing_reordering(records_at_k(records, k))
    series = _throughput_series(recs, "spmm")
    text = ascii_lines(
        series, title=f"Fig 10 (K={k}): SpMM throughput, sorted by ASpT-NR", log_y=False
    )
    return {"k": k, "series": {n: s.tolist() for n, s in series.items()}, "text": text}


def fig11_throughput_series(records: list[MatrixRecord], k: int) -> dict:
    """Fig. 11: SDDMM throughput (GFLOP/s), same layout as Fig. 10."""
    recs = needing_reordering(records_at_k(records, k))
    series = _throughput_series(recs, "sddmm")
    text = ascii_lines(
        series, title=f"Fig 11 (K={k}): SDDMM throughput, sorted by ASpT-NR"
    )
    return {"k": k, "series": {n: s.tolist() for n, s in series.items()}, "text": text}


def fig12_preprocessing_times(records: list[MatrixRecord]) -> dict:
    """Fig. 12: preprocessing wall-clock per matrix needing reordering
    (deduplicated across K — preprocessing is K-independent)."""
    seen: dict[str, float] = {}
    for r in records:
        if r.needs_reordering and r.name not in seen:
            seen[r.name] = r.preprocess_s
    times = np.array(sorted(seen.values()), dtype=np.float64)
    stats = {
        "n": int(times.size),
        "min_s": float(times.min()) if times.size else 0.0,
        "max_s": float(times.max()) if times.size else 0.0,
        "mean_s": float(times.mean()) if times.size else 0.0,
        "median_s": float(np.median(times)) if times.size else 0.0,
    }
    text = ascii_lines(
        {"preproc(s)": times},
        title="Fig 12: preprocessing time (sorted, log10 s)",
        log_y=True,
    )
    return {"times_s": times.tolist(), "stats": stats, "text": text}


def metis_comparison(
    entries: list[CorpusEntry],
    k: int,
    executor: GPUExecutor | None = None,
    reorder: ReorderConfig | None = None,
) -> dict:
    """§5.2 negative result: vertex reordering (METIS stand-in) for SpMM.

    Only square matrices participate (vertex reordering is a graph
    relabelling).  For each matrix we report two speedups over plain
    ASpT-NR on the original ordering: the bisection-vertex-reordered run,
    and the paper's LSH row reordering (ASpT-RR).  The paper observes
    slowdowns from METIS on *all* of its real-world matrices; on synthetic
    matrices whose row order is already random the sharper, still-faithful
    claim is that row reordering dominates vertex reordering everywhere.
    """
    executor = executor or GPUExecutor()
    reorder = reorder or ReorderConfig(
        panel_height=64, force_round1=False, force_round2=False
    )
    # The row-reordering candidate mirrors the paper's trial-and-error
    # deployment mode: try both rounds, keep the result if faster (the
    # §4 gates are a cheap static shortcut for the same decision).
    tried = ReorderConfig(
        **{**reorder.__dict__, "force_round1": True, "force_round2": True}
    )
    names, categories, vertex_speedups, rr_speedups = [], [], [], []
    for entry in entries:
        m = entry.matrix
        if m.n_rows != m.n_cols:
            continue
        base_plan = build_plan(m, reorder)
        base = executor.spmm_cost(base_plan.cost_view(), k, "aspt").time_s
        order = bisection_order(m)
        vertex_reordered = apply_symmetric_order(m, order)
        vr_plan = build_plan(vertex_reordered, reorder)
        vr = executor.spmm_cost(vr_plan.cost_view(), k, "aspt").time_s
        rr_plan = build_plan(m, tried)
        rr = min(
            executor.spmm_cost(rr_plan.cost_view(), k, "aspt").time_s, base
        )  # trial-and-error keeps the original when reordering loses
        names.append(entry.name)
        categories.append(entry.category)
        vertex_speedups.append(base / vr)
        rr_speedups.append(base / rr)
    vertex_arr = np.array(vertex_speedups, dtype=np.float64)
    rr_arr = np.array(rr_speedups, dtype=np.float64)
    n_slow = int((vertex_arr < 1.0).sum())
    lines = [
        f"METIS-like vertex reordering vs LSH row reordering (K={k}); "
        f"speedups over ASpT-NR on the original order",
        f"{'matrix':<30}{'category':<14}{'vertex':>8}{'row-RR':>8}",
    ]
    for name, cat, v, r in zip(names, categories, vertex_arr, rr_arr):
        lines.append(f"{name:<30}{cat:<14}{v:>7.2f}x{r:>7.2f}x")
    lines.append(
        f"vertex reordering slows down {n_slow}/{len(names)}; row reordering "
        f">= vertex reordering on {int((rr_arr >= vertex_arr * 0.999).sum())}"
        f"/{len(names)}"
    )
    return {
        "k": k,
        "names": names,
        "categories": categories,
        "speedup_vs_original": vertex_arr.tolist(),
        "rr_speedup_vs_original": rr_arr.tolist(),
        "n_slowdown": n_slow,
        "n_total": len(names),
        "text": "\n".join(lines),
    }
