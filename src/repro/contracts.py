"""Runtime contract layer: opt-in validation at function boundaries.

The library's correctness rests on invariants the type system cannot see —
CSR canonical form, permutation bijectivity, panel partitions.  The
:func:`checked` decorator attaches *contracts* (callables over a function's
bound arguments) that invoke the existing ``validate()`` / ``check_*``
machinery at every call, but only when contracts are switched on:

* set ``REPRO_CONTRACTS=1`` in the environment before importing, or
* call :func:`enable_contracts` / use the :func:`contracts` context manager.

Contracts are **off by default** and the disabled fast path is a single
attribute check, so production callers pay effectively nothing (the
``benchmarks/bench_contracts.py`` micro-benchmark pins the overhead below
2% on ``spmm_tiled``).  The test suite runs with contracts enabled
(``tests/conftest.py``), so every kernel and pipeline call in CI
re-validates its operands.

Usage::

    from repro.contracts import checked, validates

    @checked(validates("csr"))
    def transpose_csr(csr): ...

Custom contracts are plain callables receiving the bound-argument mapping::

    @checked(lambda a: check_positive("k", a["k"]))
    def run(k): ...
"""

from __future__ import annotations

import functools
import inspect
import os
from contextlib import contextmanager

__all__ = [
    "checked",
    "validates",
    "validates_each",
    "invokes",
    "contracts_enabled",
    "enable_contracts",
    "contracts",
]

#: Environment variable that switches the contract layer on (any value other
#: than empty or ``"0"``).
ENV_VAR = "REPRO_CONTRACTS"


class _State:
    """Mutable module state (a class so the flag is one attribute lookup)."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


_state = _State(os.environ.get(ENV_VAR, "") not in ("", "0"))


def contracts_enabled() -> bool:
    """True when :func:`checked` contracts execute at call boundaries."""
    return _state.enabled


def enable_contracts(on: bool = True) -> None:
    """Switch the contract layer on (or off with ``on=False``) process-wide."""
    _state.enabled = bool(on)


@contextmanager
def contracts(on: bool):
    """Context manager scoping a temporary contract on/off override."""
    previous = _state.enabled
    _state.enabled = bool(on)
    try:
        yield
    finally:
        _state.enabled = previous


def checked(*contract_fns):
    """Attach contracts to a function, executed only when contracts are on.

    Each contract is a callable taking the call's bound-argument mapping
    (``dict`` of parameter name to value, defaults applied).  Contracts run
    in order before the wrapped function; they signal violations by raising
    (typically :class:`repro.errors.ValidationError` or
    :class:`repro.errors.FormatError` via the ``check_*`` helpers).

    The decorated function exposes the originals as ``__wrapped__`` (via
    ``functools.wraps``) and ``__contracts__`` for introspection.
    """

    def decorate(fn):
        sig = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _state.enabled:
                bound = sig.bind(*args, **kwargs)
                bound.apply_defaults()
                for contract in contract_fns:
                    contract(bound.arguments)
            return fn(*args, **kwargs)

        wrapper.__contracts__ = contract_fns
        return wrapper

    return decorate


def validates(*names):
    """Contract factory: call ``.validate()`` on each named argument.

    ``None``-valued arguments are skipped so optional operands stay
    optional.  Works with every container exposing a ``validate()`` method
    (:class:`~repro.sparse.CSRMatrix`, :class:`~repro.aspt.TiledMatrix`, …).
    """

    def contract(arguments):
        for name in names:
            obj = arguments.get(name)
            if obj is not None:
                obj.validate()

    contract.__name__ = f"validates({', '.join(names)})"
    return contract


def invokes(method: str, *names):
    """Contract factory: call the named zero-argument method on each argument.

    Used where full ``validate()`` is too expensive for a per-call contract
    (e.g. ``TiledMatrix.validate`` recombines dense arrays) but a cheap
    structural check exists::

        @checked(invokes("validate_structure", "tiled"))
        def spmm_tiled(tiled, X): ...
    """

    def contract(arguments):
        for name in names:
            obj = arguments.get(name)
            if obj is not None:
                getattr(obj, method)()

    contract.__name__ = f"invokes({method!r}, {', '.join(names)})"
    return contract


def validates_each(*names):
    """Contract factory: call ``.validate()`` on every item of named sequences."""

    def contract(arguments):
        for name in names:
            seq = arguments.get(name)
            if seq is None:
                continue
            for obj in seq:
                if obj is not None:
                    obj.validate()

    contract.__name__ = f"validates_each({', '.join(names)})"
    return contract
