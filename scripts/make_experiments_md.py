#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from the canonical saved corpus run.

Usage:  python scripts/make_experiments_md.py [records.json] [out.md]

Runs the cheap extra experiments (worked example, METIS comparison, SpMV
argument) live and combines them with the saved corpus records into the
paper-vs-measured report.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, "tests")  # for the shared paper-matrix constructor

from conftest import _paper_csr  # noqa: E402
from repro.datasets import build_corpus  # noqa: E402
from repro.experiments import (  # noqa: E402
    fig9_effectiveness_scatter,
    fig12_preprocessing_times,
    load_records,
    metis_comparison,
    render_experiments_markdown,
)
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.tables import records_at_k  # noqa: E402
from repro.gpu import GPUExecutor, paper_example_access_counts  # noqa: E402
from repro.reorder import ReorderConfig  # noqa: E402


def worked_example_section() -> list[str]:
    counts = paper_example_access_counts(
        _paper_csr(),
        panel_height=3,
        rows_per_block=2,
        dense_threshold=2,
        round1_order=np.array([0, 4, 2, 3, 1, 5]),
        round2_order=np.array([1, 4, 2, 5, 0, 3]),
    )
    return [
        "### Worked example (paper Figs. 3/4) — global-memory access counts",
        "",
        "| configuration | paper | measured |",
        "|---|---|---|",
        f"| row-wise on the original 6x6 matrix | 13 | {counts.rowwise} |",
        f"| ASpT on the original matrix | 12 | {counts.aspt} |",
        f"| ASpT after row reordering | 6 | {counts.aspt_reordered} |",
        "",
        "The clustering itself also reproduces Fig. 6 exactly: candidates"
        " (0,4)@2/3 and (2,4)@1/4 yield the row order [0, 2, 4, 1, 3, 5]"
        " (asserted in `tests/integration/test_paper_example.py`).",
        "",
    ]


def fig9_section(records) -> list[str]:
    out = fig9_effectiveness_scatter(records, 512)
    return [
        "### Fig. 9 — effectiveness plane",
        "",
        f"Paper: 613/1084 matrices improved for SpMM at K=512 (56.5%); points",
        "with both ΔDenseRatio and ΔAvgSim positive all improve.",
        f"Measured: {out['n_improved']}/{out['n_total']} of the gated subset improved"
        f" ({100 * out['n_improved'] / max(out['n_total'], 1):.0f}%); the"
        " both-positive quadrant is all speedups (asserted in"
        " `benchmarks/bench_fig09_effectiveness_scatter.py`).",
        "",
    ]


def fig12_section(records) -> list[str]:
    stats = fig12_preprocessing_times(records)["stats"]
    return [
        "### Fig. 12 — preprocessing time",
        "",
        "| statistic | paper (OpenMP C++, 10^4–10^7-row matrices) | measured (NumPy, ~6x smaller matrices) |",
        "|---|---|---|",
        f"| min | 157 ms | {stats['min_s'] * 1e3:.0f} ms |",
        f"| max | 298 s | {stats['max_s']:.1f} s |",
        f"| mean | 69.38 s | {stats['mean_s']:.1f} s |",
        f"| median | 59.58 s | {stats['median_s']:.1f} s |",
        "",
        "Same long-tailed shape; absolute values are not comparable across",
        "implementation languages and matrix scales — Tables 3/4 compare the",
        "preprocessing-to-kernel *ratios* instead.",
        "",
    ]


def metis_section() -> list[str]:
    cfg = ExperimentConfig(ks=(512,), scale="small", repeats=1)
    device, cost = cfg.effective_model()
    executor = GPUExecutor(device, cost)
    entries = []
    per_cat: dict[str, int] = {}
    for e in build_corpus("small", repeats=1):
        if e.matrix.n_rows != e.matrix.n_cols or per_cat.get(e.category, 0) >= 1:
            continue
        per_cat[e.category] = 1
        entries.append(e)
    out = metis_comparison(
        entries,
        512,
        executor=executor,
        reorder=ReorderConfig(
            panel_height=cfg.reorder.panel_height,
            force_round1=False,
            force_round2=False,
        ),
    )
    lines = [
        "### §5.2 — METIS-style vertex reordering",
        "",
        "Paper: *all* matrices slow down for SpMM after METIS reordering.",
        "Measured (bisection stand-in, speedup over original ordering; row-RR",
        "is the paper's method in trial-and-error mode):",
        "",
        "```",
        out["text"],
        "```",
        "",
        "Deviation note: on *deliberately label-shuffled* synthetic structures",
        "(sbm/powerlaw/uniform start from a random order) a partitioner can",
        "rediscover structure, so 'all slowdowns' cannot hold verbatim here;",
        "the faithful shape is that vertex reordering collapses on naturally",
        "ordered matrices (0.4-0.7x on preclustered/small-world) while LSH row",
        "reordering never regresses and dominates or matches everywhere.",
        "",
    ]
    return lines


def scale_stability_section() -> list[str]:
    """Medium-scale stability (reads the saved medium run if present)."""
    import os

    from repro.experiments import load_records
    from repro.experiments.tables import (
        needing_reordering,
        records_at_k,
        summary_stats,
        category_breakdown,
    )

    lines = ["### Corpus-scale stability", ""]
    found = False
    for scale, path, note in (
        ("medium", "results/records_medium.json", "2x dimensions, co-scaled model"),
        ("paper", "results/records_paper.json",
         "true paper-sized matrices, UNSCALED P100 model"),
    ):
        if not os.path.exists(path):
            continue
        found = True
        recs = load_records(path)
        sub = needing_reordering(records_at_k(recs, 512))
        stats = summary_stats(sub, "spmm_vs_best")
        top = next(iter(category_breakdown(records_at_k(recs, 512))))
        lines.append(
            f"- `scale={scale}` ({note}): geomean {stats['geomean']:.2f}x, "
            f"median {stats['median']:.2f}x, max {stats['max']:.2f}x over "
            f"{stats['n']} gated matrices; top class: {top}."
        )
    if not found:
        lines.append(
            "(run `repro run --scale medium ...` / `--scale paper ...` to "
            "populate this section)"
        )
    else:
        lines.append("")
        lines.append(
            "The headline statistics and the per-category ordering are stable"
        )
        lines.append(
            "across corpus scales — including the paper-sized corpus against"
        )
        lines.append(
            "the untouched P100 model — so the co-scaling convenience is not"
        )
        lines.append("producing the results.")
    lines.append("")
    return lines


def paper_scale_section() -> list[str]:
    """Summarise the paper-scale spot check (static text; the bench runs it)."""
    return [
        "### Paper-scale spot check (unscaled P100)",
        "",
        "`benchmarks/bench_paper_scale_spotcheck.py` runs one true-size",
        "matrix (12,288 x 24,576, 245K nnz — passing the paper's >=10K/100K",
        "filter) against the full 4 MB-L2 P100 with unscaled overheads:",
        "dense-tile ratio 7.6% -> 73.5%, ASpT-RR 2.59x vs the best",
        "alternative, preprocessing ~3 s wall-clock (inside the paper's",
        "157 ms - 298 s range for this size class).  The corpus/model",
        "co-scaling is therefore not producing the effect; it only makes",
        "the 66-matrix sweep affordable.",
        "",
    ]


def spmv_section() -> list[str]:
    return [
        "### §1 argument — vertex reordering helps SpMV, not SpMM",
        "",
        "`benchmarks/bench_spmv_vs_spmm_reordering.py`: on a scrambled",
        "staircase matrix (adjacent rows touch adjacent but disjoint columns)",
        "the *ideal* spatial reordering speeds up modelled SpMV by ~1.45x",
        "(cache-line locality) while SpMM (K=512) is bit-identical at 1.00x —",
        "and the paper's LSH machinery generates zero candidate pairs, the",
        "Fig. 7b automatic-detection behaviour.",
        "",
    ]


def ablation_section() -> list[str]:
    return [
        "### Ablation findings (beyond the paper)",
        "",
        "- **K sweep** (`bench_sweep_k.py`): at K=32 the dense operand fits",
        "  in L2 and reordering is neutral (0.95x); the speedup rises once K",
        "  pushes the operand past L2 capacity (1.7x at 128, 2.6x at 512) and",
        "  saturates at K=2048 — the structural reason the paper's story is",
        "  about SpMM, not SpMV.",
        "- **threshold_size** (paper: 256): optimal value scales with the",
        "  matrix; on ~6x-shrunken matrices the plateau sits at 16-64, and an",
        "  oversized threshold lets chained merges build mixed mega-clusters",
        "  whose index-ordered emission destroys panel locality",
        "  (`bench_ablation_threshold_size.py`).",
        "- **LSH parameters** (paper: siglen=128, bsize=2): bsize=1 floods the",
        "  heap with near-zero-similarity candidates at 10-25x the",
        "  preprocessing cost; the paper's point sits on the quality plateau",
        "  (`bench_ablation_lsh_params.py`).",
        "- **§4 gates**: capture all of force-on's aggregate win except a",
        "  borderline margin (prior dense ratio just above 10%), and fully",
        "  avoid force-off's losses (`bench_ablation_heuristics.py`).",
        "- **Cache model**: the vectorised reuse-distance bound is a proven",
        "  lower bound at slack=1 and tracks exact LRU within 30pp at the",
        "  corpus setting, at >5x the speed (`bench_ablation_cache_model.py`).",
        "- **Similarity measure**: Jaccard/cosine/overlap/Dice are",
        "  near-equivalent as clustering drivers on uniform-length clusters;",
        "  divergence needs strongly skewed row lengths",
        "  (`bench_ablation_similarity.py`).",
        "",
    ]


def main() -> int:
    records_path = sys.argv[1] if len(sys.argv) > 1 else "results/records_small.json"
    out_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    records = load_records(records_path)

    extra: list[str] = ["## Per-experiment detail", ""]
    extra += worked_example_section()
    extra += fig9_section(records)
    extra += fig12_section(records)
    extra += metis_section()
    extra += scale_stability_section()
    extra += paper_scale_section()
    extra += spmv_section()
    extra += ablation_section()
    extra += [
        "## Rendered figures",
        "",
        "`results/figures/` holds SVG renderings of Figs. 8-12 at K=512",
        "(`repro figure N --svg ...`); each figure's raw series is also",
        "exportable with `--json` for external plotting.",
        "",
        "## Reproducing",
        "",
        "```bash",
        "repro run --scale small --repeats 2 --out results/records_small.json",
        "repro run --scale medium --repeats 1 --k 512 --out results/records_medium.json",
        "repro run --scale paper --repeats 1 --k 512 --out results/records_paper.json",
        "python scripts/make_experiments_md.py    # this document",
        "repro report --records results/records_small.json --html results/report.html",
        "pytest benchmarks/ --benchmark-only -s   # every table/figure + ablations",
        "```",
        "",
    ]

    text = render_experiments_markdown(records, extra_sections=extra)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
