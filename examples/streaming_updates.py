#!/usr/bin/env python
"""Streaming row arrival with the online reorderer (extension).

A recommender ingests users in arrival order; users with similar taste
(similar rating columns) arrive interleaved, so the stored matrix has no
row locality.  Instead of re-running the full LSH + clustering pipeline
after every batch, :class:`repro.reorder.OnlineReorderer` places each new
row into the best matching cluster as it arrives (``O(siglen * nnz_row)``
per row) and can emit a grouped row order at any point.

The script streams a taste-clustered rating matrix row by row, then
compares three orderings on the modelled GPU: arrival order, the online
order, and the full batch pipeline.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro.aspt import tile_matrix
from repro.datasets import bipartite_ratings
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import OnlineReorderer, ReorderConfig, build_plan
from repro.sparse import permute_csr_rows
from repro.util.timing import Timer


def main() -> None:
    ratings = bipartite_ratings(
        n_users=2048, n_items=2048, mean_ratings=20,
        n_taste_groups=64, concentration=0.95, seed=7,
    )
    print(f"stream: {ratings.n_rows} users x {ratings.n_cols} items, "
          f"{ratings.nnz} ratings")

    # ---- ingest the stream ------------------------------------------------
    online = OnlineReorderer(ratings.n_cols, siglen=128, bsize=2, seed=0)
    with Timer() as t_online:
        for i in range(ratings.n_rows):
            online.insert_row(ratings.row_cols(i))
    print(f"online ingest: {t_online.elapsed:.2f}s total "
          f"({t_online.elapsed / ratings.n_rows * 1e3:.2f} ms/row), "
          f"{online.n_clusters} clusters")

    # ---- batch pipeline for reference --------------------------------------
    with Timer() as t_batch:
        plan = build_plan(
            ratings, ReorderConfig(panel_height=16, force_round1=True)
        )
    print(f"batch pipeline: {t_batch.elapsed:.2f}s "
          f"(one-shot; must re-run after every batch of arrivals)")

    # ---- modelled SpMM cost of the three orderings -------------------------
    cfg = ExperimentConfig(scale="small")
    device, cost = cfg.effective_model()
    executor = GPUExecutor(device, cost)

    arrival = executor.spmm_cost(tile_matrix(ratings, 16), 512, "aspt").time_s
    online_t = executor.spmm_cost(
        tile_matrix(permute_csr_rows(ratings, online.order()), 16), 512, "aspt"
    ).time_s
    batch_t = executor.spmm_cost(plan.cost_view(), 512, "aspt").time_s

    print(f"modelled SpMM (K=512):")
    print(f"  arrival order : {arrival * 1e6:8.1f} us")
    print(f"  online order  : {online_t * 1e6:8.1f} us  ({arrival / online_t:.2f}x)")
    print(f"  batch order   : {batch_t * 1e6:8.1f} us  ({arrival / batch_t:.2f}x)")


if __name__ == "__main__":
    main()
