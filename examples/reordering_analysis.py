#!/usr/bin/env python
"""When does row reordering help?  A miniature of the paper's §4 / Fig. 9.

Runs the pipeline over one representative matrix of each structure class,
prints the two §4 indicators (original dense-tile ratio, remainder
consecutive-row similarity), whether each reordering round ran, the
ΔDenseRatio / ΔAvgSim effectiveness deltas, and the trial-and-error
autotuner's verdict — ending with an ASCII Fig. 9-style scatter.

Run:  python examples/reordering_analysis.py
"""

import numpy as np

from repro import ReorderConfig, autotune, build_plan
from repro.datasets import (
    banded,
    diagonal,
    hidden_clusters,
    preclustered,
    rmat,
    stochastic_block_model,
    uniform_random,
)
from repro.experiments.asciiplot import ascii_scatter
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor


def main() -> None:
    matrices = {
        "diagonal (Fig 7b)": diagonal(2000, seed=0),
        "banded": banded(2000, 2, seed=0),
        "uniform random": uniform_random(2000, 2000, 8, seed=0),
        "R-MAT graph": rmat(11, 8, seed=0),
        "pre-clustered (Fig 7a)": preclustered(250, 8, 2048, 20, seed=0),
        "hidden clusters": hidden_clusters(250, 8, 6144, 20, noise=0.1, seed=0),
        "community graph (SBM)": stochastic_block_model(128, 16, p_in=0.3, seed=0),
    }

    # The experiment-grade model: P100 shrunk to match these matrix sizes.
    cfg = ExperimentConfig(ks=(512,), scale="small", repeats=1)
    device, cost = cfg.effective_model()
    executor = GPUExecutor(device, cost)
    config = ReorderConfig(panel_height=16)

    print(f"{'matrix':<24}{'dense%':>8}{'avgsim':>8}{'r1':>4}{'r2':>4}"
          f"{'dDR':>8}{'dAS':>8}{'autotune':>10}{'speedup':>9}")
    xs, ys, marks = [], [], []
    for name, m in matrices.items():
        plan = build_plan(m, config)
        s = plan.stats
        result = autotune(m, 512, executor=executor, config=config)
        print(
            f"{name:<24}{s.dense_ratio_before:>7.1%}{s.avg_sim_before:>8.3f}"
            f"{'Y' if s.round1_applied else '-':>4}"
            f"{'Y' if s.round2_applied else '-':>4}"
            f"{s.delta_dense_ratio:>+8.3f}{s.delta_avg_sim:>+8.3f}"
            f"{'reorder' if result.use_reordering else 'plain':>10}"
            f"{result.speedup:>8.2f}x"
        )
        xs.append(s.delta_dense_ratio)
        ys.append(s.delta_avg_sim)
        marks.append("+" if result.speedup >= 1.0 else "-")

    print()
    print(ascii_scatter(
        np.array(xs), np.array(ys), marks,
        width=60, height=14,
        title="Fig 9 miniature: x = dDenseRatio, y = dAvgSim ('+' speedup, '-' slowdown)",
    ))


if __name__ == "__main__":
    main()
