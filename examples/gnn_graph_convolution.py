#!/usr/bin/env python
"""Graph convolution (GCN) inference with row-reordered SpMM.

The paper's introduction motivates SpMM with graph neural networks: a GCN
layer is ``H' = act(A_hat @ H @ W)`` where ``A_hat`` is the normalised
adjacency — the ``A_hat @ (...)`` step is SpMM with a wide dense operand.

This example builds an R-MAT graph, assembles the symmetric-normalised
adjacency ``A_hat = D^-1/2 (A + I) D^-1/2`` from scratch, runs a 2-layer
GCN forward pass both directly and through a reordered execution plan,
verifies the logits agree to machine precision, and reports the modelled
per-layer kernel time plus the number of inference batches needed to
amortise the preprocessing (the paper's "offline step for GNN inference"
argument).

Run:  python examples/gnn_graph_convolution.py
"""

import numpy as np

from repro import ReorderConfig, build_plan, spmm
from repro.datasets import stochastic_block_model
from repro.gpu import GPUExecutor, P100
from repro.sparse import COOMatrix, CSRMatrix


def normalised_adjacency(graph: CSRMatrix) -> CSRMatrix:
    """``D^-1/2 (A + I) D^-1/2`` with binary A (the standard GCN operator)."""
    n = graph.n_rows
    rows = np.concatenate([graph.row_ids(), np.arange(n, dtype=np.int64)])
    cols = np.concatenate([graph.colidx, np.arange(n, dtype=np.int64)])
    a_hat = COOMatrix.from_arrays((n, n), rows, cols).to_csr()  # pattern + I
    degrees = a_hat.row_lengths().astype(np.float64)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    values = inv_sqrt[a_hat.row_ids()] * inv_sqrt[a_hat.colidx]
    return a_hat.with_values(values)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def gcn_forward(mult, H: np.ndarray, W1: np.ndarray, W2: np.ndarray) -> np.ndarray:
    """Two GCN layers; ``mult(X)`` computes ``A_hat @ X``."""
    H1 = relu(mult(H @ W1))
    return mult(H1 @ W2)


def main() -> None:
    rng = np.random.default_rng(7)

    # A community graph (think citation/social network) whose vertex
    # labels were assigned in arrival order — community structure exists
    # but is invisible to consecutive-row heuristics until reordered.
    graph = stochastic_block_model(160, 16, p_in=0.35, p_out=0.0008, seed=rng)
    a_hat = normalised_adjacency(graph)
    print(f"graph: {a_hat.n_rows} vertices, {a_hat.nnz} normalised edges")

    n, feat, hidden, classes = a_hat.n_rows, 512, 256, 16
    H = rng.normal(size=(n, feat))
    W1 = rng.normal(size=(feat, hidden)) / np.sqrt(feat)
    W2 = rng.normal(size=(hidden, classes)) / np.sqrt(hidden)

    # ---- preprocessing: reorder once, reuse for every inference --------
    plan = build_plan(a_hat, ReorderConfig(panel_height=16))
    print(f"reordering rounds applied: 1={plan.stats.round1_applied} "
          f"2={plan.stats.round2_applied}; preprocessing "
          f"{plan.preprocessing_time:.2f}s")

    logits_plan = gcn_forward(plan.spmm, H, W1, W2)
    logits_ref = gcn_forward(lambda X: spmm(a_hat, X), H, W1, W2)
    np.testing.assert_allclose(logits_plan, logits_ref, rtol=1e-8, atol=1e-8)
    print("2-layer GCN logits identical through the reordered plan (verified)")
    print(f"predicted classes (first 10): {logits_plan.argmax(1)[:10].tolist()}")

    # ---- modelled amortisation ------------------------------------------
    executor = GPUExecutor(P100.with_overrides(l2_bytes=P100.l2_bytes // 6))
    from repro.aspt import tile_matrix

    t_nr = executor.spmm_cost(tile_matrix(a_hat, 16), hidden, "aspt").time_s
    t_rr = executor.spmm_cost(plan.cost_view(), hidden, "aspt").time_s
    print(f"modelled SpMM per layer: ASpT-NR {t_nr * 1e6:.1f} us, "
          f"ASpT-RR {t_rr * 1e6:.1f} us ({t_nr / t_rr:.2f}x)")
    if t_rr < t_nr:
        batches = plan.preprocessing_time / (2 * (t_nr - t_rr))
        print(f"preprocessing amortised after ~{batches:,.0f} inference "
              f"batches (2 SpMM layers each) — an offline one-time cost")


if __name__ == "__main__":
    main()
