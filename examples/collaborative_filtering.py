#!/usr/bin/env python
"""Collaborative filtering with row-reordered SDDMM.

The paper's second motivating workload: gradient descent for matrix
factorisation.  With ratings ``R`` (sparse, users x items) and factor
matrices ``U`` (users x k), ``V`` (items x k), each epoch needs the
*predictions at the observed entries* — exactly SDDMM with the rating
pattern as the sampling matrix:

    P = (U @ V.T) .* pattern(R)          # SDDMM
    E = P - R                            # sparse residuals
    U -= lr * (E @ V)                    # SpMM
    V -= lr * (E.T @ U)                  # SpMM (transposed residuals)

Because the same sparse pattern is used every epoch, the row-reordering
preprocessing is paid once and amortised across all of them — the paper's
§5.4 argument.  This example trains for a few epochs, shows the RMSE
falling, and reports the modelled per-epoch SDDMM time with and without
reordering.

Run:  python examples/collaborative_filtering.py
"""

import numpy as np

from repro import ReorderConfig, build_plan
from repro.datasets import bipartite_ratings
from repro.gpu import GPUExecutor, P100
from repro.kernels import sddmm, spmm
from repro.sparse import CSRMatrix, transpose_csr


def rmse(residuals: CSRMatrix) -> float:
    return float(np.sqrt(np.mean(residuals.values**2)))


def main() -> None:
    rng = np.random.default_rng(3)

    ratings = bipartite_ratings(
        n_users=2048, n_items=1536, mean_ratings=24,
        n_taste_groups=24, concentration=0.85, seed=rng,
    )
    print(f"ratings: {ratings.n_rows} users x {ratings.n_cols} items, "
          f"{ratings.nnz} observed")

    k, lr, epochs = 32, 0.4, 8
    U = 0.1 * rng.normal(size=(ratings.n_rows, k))
    V = 0.1 * rng.normal(size=(ratings.n_cols, k))

    # ---- one-time preprocessing ----------------------------------------
    plan = build_plan(ratings.pattern(), ReorderConfig(panel_height=16))
    print(f"reordering rounds applied: 1={plan.stats.round1_applied} "
          f"2={plan.stats.round2_applied}; preprocessing "
          f"{plan.preprocessing_time:.2f}s")

    # ---- training loop ---------------------------------------------------
    pattern = ratings.pattern()
    for epoch in range(epochs):
        # Predictions at observed entries through the reordered plan
        # (V is the "X" operand indexed by item, U is indexed by user).
        predictions = plan.sddmm(V, U)
        residuals = predictions.with_values(predictions.values - ratings.values)
        U -= lr * spmm(residuals, V) / max(1, ratings.nnz / ratings.n_rows)
        V -= lr * spmm(transpose_csr(residuals), U) / max(1, ratings.nnz / ratings.n_cols)
        print(f"epoch {epoch}: RMSE = {rmse(residuals):.4f}")

    # Sanity: the plan's SDDMM equals the direct kernel.
    direct = sddmm(pattern, V, U)
    via_plan = plan.sddmm(V, U)
    np.testing.assert_allclose(via_plan.values, direct.values, rtol=1e-9, atol=1e-9)
    print("plan.sddmm == direct SDDMM (verified)")

    # ---- modelled per-epoch cost ----------------------------------------
    executor = GPUExecutor(P100.with_overrides(l2_bytes=P100.l2_bytes // 6))
    from repro.aspt import tile_matrix

    t_nr = executor.sddmm_cost(tile_matrix(pattern, 16), 512, "aspt").time_s
    t_rr = executor.sddmm_cost(plan.cost_view(), 512, "aspt").time_s
    print(f"modelled SDDMM (K=512): ASpT-NR {t_nr * 1e6:.1f} us, "
          f"ASpT-RR {t_rr * 1e6:.1f} us ({t_nr / t_rr:.2f}x per epoch, "
          f"every epoch, for one preprocessing pass)")


if __name__ == "__main__":
    main()
