#!/usr/bin/env python
"""Quickstart: reorder a sparse matrix and multiply through the plan.

Builds the paper's motivating scenario — a matrix whose rows form hidden
clusters scattered through the row order — runs the full Fig. 5 pipeline
(LSH candidate pairs -> hierarchical clustering -> ASpT tiling -> remainder
reordering), verifies the product is bit-for-bit the same contraction, and
reports what the data transformation bought on the modelled P100.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ReorderConfig, build_plan, spmm
from repro.datasets import hidden_clusters
from repro.gpu import GPUExecutor, P100


def main() -> None:
    rng = np.random.default_rng(0)

    # A 2048 x 6144 sparse matrix: 256 groups of 8 rows sharing a column
    # pattern, shuffled into random row order (what ASpT alone cannot see).
    S = hidden_clusters(
        n_clusters=256, rows_per_cluster=8, n_cols=6144, pattern_nnz=20,
        noise=0.1, seed=rng,
    )
    print(f"matrix: {S.n_rows} x {S.n_cols}, nnz = {S.nnz}")

    # ---- build the execution plan (the paper's preprocessing) ----------
    plan = build_plan(S, ReorderConfig(panel_height=16))
    s = plan.stats
    print(f"round 1 applied: {s.round1_applied}   round 2 applied: {s.round2_applied}")
    print(f"dense-tile ratio: {s.dense_ratio_before:.1%} -> {s.dense_ratio_after:.1%}")
    print(f"avg consecutive-row similarity of remainder: "
          f"{s.avg_sim_before:.3f} -> {s.avg_sim_after:.3f}")
    print(f"preprocessing took {plan.preprocessing_time:.2f}s wall-clock")

    # ---- multiply: results are in ORIGINAL coordinates ------------------
    X = rng.normal(size=(S.n_cols, 512))
    Y = plan.spmm(X)
    Y_reference = spmm(S, X)
    np.testing.assert_allclose(Y, Y_reference, rtol=1e-10, atol=1e-9)
    print("plan.spmm(X) == S @ X  (verified)")

    # ---- what did it buy on the modelled GPU? ---------------------------
    # Use a smaller L2 so the 6144-row dense operand doesn't trivially fit
    # (at paper scale the operand is ~10x larger than L2; see DESIGN.md).
    executor = GPUExecutor(P100.with_overrides(l2_bytes=P100.l2_bytes // 6))
    from repro.aspt import tile_matrix

    cost_nr = executor.spmm_cost(tile_matrix(S, 16), 512, "aspt")
    cost_rr = executor.spmm_cost(plan.cost_view(), 512, "aspt")
    cost_cusparse = executor.spmm_cost(S, 512, "cusparse")
    print(f"modelled SpMM time  cuSPARSE-like: {cost_cusparse.time_s * 1e6:8.1f} us")
    print(f"modelled SpMM time  ASpT-NR:       {cost_nr.time_s * 1e6:8.1f} us")
    print(f"modelled SpMM time  ASpT-RR:       {cost_rr.time_s * 1e6:8.1f} us")
    print(f"row reordering speedup vs best alternative: "
          f"{min(cost_nr.time_s, cost_cusparse.time_s) / cost_rr.time_s:.2f}x")


if __name__ == "__main__":
    main()
