#!/usr/bin/env python
"""Plan caching: amortise preprocessing across calls, processes and runs.

The paper's deployment story is "reorder once, multiply many times".  The
plan store extends the amortisation across *calls*: a serving process that
sees the same matrix pattern again — a GNN running inference on a fixed
graph, a recommender retraining on the same rating pattern — pays the
MinHash/LSH/clustering cost once and a cheap permute+tile afterwards.

This script builds the same plan three times:

1. cache-cold through a fresh ``PlanStore`` (full pipeline runs),
2. cache-warm from the in-memory LRU tier (zero reordering work),
3. cache-warm from the *disk* tier through a brand-new store, simulating
   a process restart.

It verifies all three plans are bit-identical in their decisions and
numerically identical in their products, then shows the batched parallel
front end with a structured per-matrix failure.

Run:  python examples/plan_caching.py
"""

import tempfile
import time

import numpy as np

from repro.datasets import hidden_clusters
from repro.planstore import PlanStore, build_plans
from repro.reorder import ReorderConfig, build_plan


def main() -> None:
    rng = np.random.default_rng(0)
    S = hidden_clusters(
        n_clusters=128, rows_per_cluster=8, n_cols=3072, pattern_nnz=20,
        noise=0.1, seed=rng,
    )
    config = ReorderConfig(panel_height=16)
    cache_dir = tempfile.mkdtemp(prefix="repro-plan-cache-")
    print(f"matrix: {S.n_rows} x {S.n_cols}, nnz = {S.nnz}")
    print(f"plan store: {cache_dir}")

    # ---- 1. cache-cold: the full Fig. 5 pipeline runs -------------------
    store = PlanStore(cache_dir=cache_dir)
    t0 = time.perf_counter()
    cold = build_plan(S, config, cache=store)
    cold_s = time.perf_counter() - t0
    print(f"\ncold build:  {cold_s * 1e3:8.1f} ms  "
          f"(stages: {sorted(k for k in cold.preprocess_seconds if k != 'total')})")

    # ---- 2. cache-warm from memory: zero reordering work ----------------
    t0 = time.perf_counter()
    warm = build_plan(S, config, cache=store)
    warm_s = time.perf_counter() - t0
    print(f"warm (mem):  {warm_s * 1e3:8.1f} ms  ({cold_s / warm_s:.0f}x faster; "
          f"breakdown: {sorted(k for k in warm.preprocess_seconds if k != 'total')})")

    # ---- 3. cache-warm from disk: simulate a process restart ------------
    restarted = PlanStore(cache_dir=cache_dir)  # empty memory tier
    t0 = time.perf_counter()
    persisted = build_plan(S, config, cache=restarted)
    disk_s = time.perf_counter() - t0
    print(f"warm (disk): {disk_s * 1e3:8.1f} ms  ({cold_s / disk_s:.0f}x faster)")

    # All three made the same decisions and the same product.
    assert np.array_equal(cold.row_order, warm.row_order)
    assert np.array_equal(cold.row_order, persisted.row_order)
    X = rng.normal(size=(S.n_cols, 64))
    np.testing.assert_array_equal(warm.spmm(X), cold.spmm(X))
    np.testing.assert_array_equal(persisted.spmm(X), cold.spmm(X))
    np.testing.assert_allclose(cold.spmm(X), S.to_dense() @ X, rtol=1e-10, atol=1e-8)
    print("decisions bit-identical, products verified against dense NumPy")
    print(f"cache counters: {store.stats()}")

    # ---- batched front end: order-preserving, failures as data ----------
    fleet = [
        S,  # warm: same pattern as above
        hidden_clusters(16, 8, 256, 8, noise=0.1, seed=1),
        "not a matrix",  # builds must fail per-item, never abort the batch
    ]
    results = build_plans(fleet, config, cache=store)
    print("\nbatch results (input order preserved):")
    for r in results:
        status = (
            f"ok ({'cache hit' if r.cache_hit else 'built'})"
            if r.ok
            else f"FAILED: {r.error}"
        )
        print(f"  #{r.index}: {status}")
    assert results[0].cache_hit and results[1].ok and not results[2].ok


if __name__ == "__main__":
    main()
