"""Clean counterpart of ``flagged_dataflow.py`` — nothing may fire.

Every section mirrors a flagged case with the sanctioned pattern:
sorted iteration before digests, seeded RNG, dtype-threading
allocations, pure validators, and effects only *after* fault points (or
on branches that never reach one).
"""

import numpy as np

from repro.util.hashing import stable_digest


# -- RD401 counterparts ---------------------------------------------------

def fingerprint_sorted(items):
    ordered = sorted(set(items))  # sorted() strips the order taint
    return stable_digest(ordered)


def digest_static(parts):
    import hashlib

    h = hashlib.sha256()
    h.update(repr(list(parts)).encode())
    return h.hexdigest()


# -- RD402 counterparts ---------------------------------------------------

def kernel_with_seeded_rng(values, seed=0):
    rng = np.random.default_rng(seed)  # seeded: reproducible
    noise = rng.normal(size=values.shape)
    return values + noise


# -- RD501 counterparts ---------------------------------------------------

def accumulate_preserving(x):
    acc = np.zeros(x.shape, dtype=x.dtype)  # threads the input dtype
    acc = acc + x
    return acc


def widen_explicitly(x):
    lo = x.astype(np.float32)
    return lo.astype(np.float64) * 2.0  # announced, not silent


# -- RD601 counterparts ---------------------------------------------------

def quiet_validator(plan):
    return plan is not None  # reads only


def checked(*contracts):
    def wrap(fn):
        return fn

    return wrap


def validates(*names):
    return names


@checked(quiet_validator)
def build(plan):
    return plan


class Plan:
    def validate(self):
        return bool(self)  # pure


@checked(validates("plan"))
def run(plan):
    return plan


# -- RD602 counterparts ---------------------------------------------------

def fault_point(site):
    return None


def safe_stage(out, x):
    fault_point("stage.safe")  # probe first, effects after
    out[0] = x
    return out


def counting_stage(stats, out, x):
    if out is None:
        stats["misses"] = 1  # early-return branch: never reaches the fault
        return None
    fault_point("stage.counting")
    out[0] = x
    return out


def local_scratch_stage(x):
    scratch = np.zeros(3)
    scratch[0] = x  # local mutation is unobservable
    fault_point("stage.local")
    return scratch
