"""Fixture: RD204 implicit-upcast allocations fire in this file."""

import numpy as np


def kernel(n, k):
    """RD204: dtype-less allocations default to float64."""
    out = np.empty((n, k))
    acc = np.zeros(n)
    mask = np.ones((n, 1))
    fill = np.full((n, k), 0.5)
    return out, acc, mask, fill
