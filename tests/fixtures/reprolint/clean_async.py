"""Fixture: RD108 stays silent — blocking work is loop-safe here."""

import asyncio
import time
from pathlib import Path


async def handle_request(writer):
    """asyncio.sleep yields the loop; not a blocking call."""
    await asyncio.sleep(0.1)
    writer.write(b"ok\n")


async def load_config(path):
    """Blocking IO dispatched to the executor is the sanctioned shape."""
    loop = asyncio.get_running_loop()

    def read_sync():
        # Inside a nested sync def: this runs on an executor thread,
        # where blocking is fine.
        with open(path) as fh:
            return fh.read()

    return await loop.run_in_executor(None, read_sync)


def warm_cache(path):
    """Sync functions may block; RD108 only watches async frames."""
    time.sleep(0.01)
    return Path(path).read_text()
