"""Fixture: a routed CLI handler — no RD304."""

from repro.cli import cli_handler


@cli_handler("fixture")
def _cmd_fixture(args):
    """Registered handler: errors route through repro.errors exit codes."""
    return 0
