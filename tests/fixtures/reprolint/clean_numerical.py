"""Fixture: numerically safe counterparts of the RD2xx violations."""

import math

import numpy as np

from repro.contracts import checked, validates
from repro.util.validation import check_dense


def compare(val):
    """Tolerant comparison: no RD201."""
    return math.isclose(val, 0.1) or val == 1


def widen(arr):
    """int64 casts: no RD202."""
    a = arr.astype(np.int64)
    b = np.asarray(arr, dtype="int64")
    return a, b


@checked(validates("csr"))
def spmm_like(csr, X):
    """Decorated entry point: no RD203."""
    return csr, X


def sddmm_like(csr, X):
    """Inline-validated entry point: no RD203."""
    csr.validate()
    X = check_dense("X", X)
    return csr, X
