"""Fixture: named-exception counterparts of the RD106 violations."""


def swallow_named():
    """Named types: no RD106."""
    try:
        return 1
    except (ValueError, OSError):
        return None


def capture_for_pool_worker():
    """Justified suppression: RD106 disabled with a reason."""
    try:
        return 1
    except Exception as exc:  # reprolint: disable=RD106 -- worker marshals failures
        return str(exc)
