"""Mini-project fixture: a fake ``repro`` package for inter-procedural
dataflow tests (the directory name anchors ``module_rel`` scoping)."""
