"""Leaf helpers: the taint source, the dtype leaf, and the impure callee
live one module away from where the findings surface."""

import time

import numpy as np


def jitter():
    return time.perf_counter()  # nondeterminism enters here


def scale(x, factor):
    return x * factor  # passthrough: taint rides through both params


def alloc_accumulator(shape):
    return np.zeros(shape)  # implicit float64 leaks across the call


def bump(counters, key):
    counters[key] = counters.get(key, 0) + 1  # mutates its parameter
