"""Where the inter-procedural findings surface: every violation here
needs a fact from ``helpers``/``hashing`` to be derivable."""

import numpy as np

from repro.kernels.helpers import alloc_accumulator, bump, jitter, scale
from repro.util.hashing import stable_digest


def plan_key(parts):
    stamp = jitter()  # tainted by the callee's clock read
    return stable_digest(parts, stamp)  # RD401 across two call edges


def noisy_output(values):
    return scale(values, jitter())  # RD402: taint through passthrough params


def accumulate(x):
    acc = alloc_accumulator(x.shape)  # hard float64 from the callee
    return acc + x  # RD501: preserving param meets the callee's default


def fault_point(site):
    return None


def staged(counters, x):
    bump(counters, "calls")  # callee mutates our parameter
    fault_point("compute.staged")  # RD602: the bump is observable
    return x


def staged_fresh(x):
    bump({}, "calls")  # fresh dict: the callee mutation is invisible
    fault_point("compute.fresh")
    return x
