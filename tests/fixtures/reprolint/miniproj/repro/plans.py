"""Contract targets whose (im)purity is only visible through callees."""

from repro.kernels.helpers import bump


def checked(*contracts):
    def wrap(fn):
        return fn

    return wrap


def audit(plan):
    bump(plan, "audited")  # impure: mutates the plan via the callee


def inspect(plan):
    bump({}, "inspected")  # pure: the callee mutates a fresh local dict
    return plan


@checked(audit)
def build(plan):  # RD601: audit() transitively mutates its argument
    return plan


@checked(inspect)
def assemble(plan):  # clean: inspect() is observably pure
    return plan
