"""The fixture's hash sink module (matches the real sink table entry)."""


def stable_digest(*parts):
    return "".join(repr(p) for p in parts)
