"""Fixture: hygienic counterparts of the RD30x violations."""

import logging

logger = logging.getLogger(__name__)


def swallow():
    """Typed except: no RD301."""
    try:
        return 1
    except ValueError:
        return None


def accumulate(item, seen=None, lookup=None):
    """None sentinels: no RD302."""
    seen = [] if seen is None else seen
    lookup = {} if lookup is None else lookup
    seen.append(item)
    return seen, lookup


def report(msg):
    """Logging instead of print: no RD303."""
    logger.info(msg)
