"""Fixture: every RD105 nnz-scratch allocation in this file fires."""

import numpy as np


def spmm_scratch(csr, X):
    """RD105 twice: per-call nnz-proportional scratch, no workspace."""
    products = np.zeros(csr.nnz, dtype=np.float64)
    gathered = np.empty((4, csr.nnz))
    return products, gathered


def kw_shape(csr):
    """RD105: shape passed as a keyword argument."""
    return np.empty(shape=(csr.nnz, 2))


def bare_name(nnz):
    """RD105: a bare ``nnz`` variable counts too."""
    return np.zeros(nnz)
