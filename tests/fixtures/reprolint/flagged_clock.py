"""Fixture: RD107 fires on every direct monotonic-clock call here."""

import time


def measure(fn):
    """RD107: direct perf_counter calls bypass clock injection."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def deadline_left(t_end):
    """RD107: direct monotonic call."""
    return t_end - time.monotonic()


def stamp_ns():
    """RD107: the ``_ns`` variants count too."""
    return time.perf_counter_ns(), time.monotonic_ns()
