"""Fixture: injectable-clock counterparts that RD107 must not flag."""

import time


def measure(fn, clock=time.perf_counter):
    """Referencing ``time.perf_counter`` as a default is the sanctioned
    pattern; only *calling* it directly is flagged."""
    t0 = clock()
    fn()
    return clock() - t0


def deadline_left(t_end, clock=time.monotonic):
    """Injected monotonic clock: no RD107."""
    return t_end - clock()


def wall_stamp():
    """``time.time()`` is wall-clock, not a monotonic clock — RD104's
    territory (out of scope here), never RD107's."""
    return time.time()
