"""Fixture: every RD30x hygiene rule (bar RD304) fires in this file."""


def swallow():
    """RD301: bare except."""
    try:
        return 1
    except:
        return None


def accumulate(item, seen=[], lookup={}):
    """RD302: mutable default arguments."""
    seen.append(item)
    return seen, lookup


def report(msg):
    """RD303: print in library code."""
    print(msg)
