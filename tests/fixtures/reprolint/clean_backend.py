"""Fixture: dtype-explicit allocations — RD204 stays silent."""

import numpy as np


def kernel(n, k, X):
    """Every allocation names its dtype (or fixes it positionally)."""
    out = np.empty((n, k), dtype=np.float64)
    acc = np.zeros(n, dtype=X.dtype)
    mask = np.ones((n, 1), np.bool_)  # positional dtype
    fill = np.full((n, k), 0.5, dtype=X.dtype)
    like = np.empty_like(X)  # _like constructors inherit the dtype
    return out, acc, mask, fill, like
