"""Fixture: RD108 fires on every blocking call inside an async def here."""

import subprocess
import time
from pathlib import Path


async def handle_request(writer):
    """RD108: time.sleep stalls every connection on the loop."""
    time.sleep(0.1)
    writer.write(b"ok\n")


async def load_config(path):
    """RD108: sync file IO (open and Path helpers) inside async."""
    with open(path) as fh:  # noqa: typical sync IO
        first = fh.readline()
    rest = Path(path).read_text()
    return first, rest


async def snapshot(path, payload):
    """RD108: sync writes and subprocess waits inside async."""
    Path(path).write_bytes(payload)
    subprocess.run(["sync"], check=False)


async def outer():
    """RD108 also fires inside nested *async* frames."""

    async def inner():
        time.sleep(0.5)

    await inner()
