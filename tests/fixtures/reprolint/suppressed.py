"""Fixture: inline suppressions — one justified, one bare, one unrelated."""


def compare(val):
    """The RD201 on the next line is suppressed with a justification."""
    return val == 1.0  # reprolint: disable=RD201 -- sentinel equality against the documented default


def compare_bare(val):
    """Suppressed but without a justification (flagged by unjustified())."""
    return val == 2.0  # reprolint: disable=RD201


def swallow():
    """The suppression names a different code, so RD301 still fires."""
    try:
        return 1
    except:  # reprolint: disable=RD303 -- wrong code on purpose
        return None
