"""Fixture: RD304 fires — a CLI handler outside the routing registry."""


def _cmd_orphan(args):
    """RD304: not registered with @cli_handler."""
    return 0
