"""Fixture: deterministic counterparts of the RD1xx violations."""

import numpy as np


def make_generator(seed):
    """Seeded generator: no RD101."""
    return np.random.default_rng(seed)


def modern_calls(rng):
    """Generator API instead of the legacy globals: no RD102."""
    return rng.normal(size=3)


def iterate_sorted(items):
    """Sorted materialisation before iteration: no RD103."""
    for item in sorted(set(items)):
        pass
    return [x for x in sorted({v for v in items})]


def stamp(clock):
    """Injected clock: no RD104."""
    return clock()
