"""Flagged fixture for the RD4xx-RD6xx dataflow rules.

Linted under ``repro/kernels/fixture.py`` so every dataflow scope
applies (taint, dtype, purity, and the kernel-return RD402 sink).  Each
section plants exactly the violations the tests assert on.
"""

import time

import numpy as np

from repro.util.hashing import stable_digest


# -- RD401: nondeterministic values reaching content hashes ---------------

def fingerprint_with_clock(parts):
    stamp = time.time()  # the source
    return stable_digest(parts, stamp)  # RD401: clock into content hash


def digest_set_order(items):
    import hashlib

    h = hashlib.sha256()
    ordered = [k for k in set(items)]
    h.update(repr(ordered).encode())  # RD401: set order into digest
    return h.hexdigest()


# -- RD402: nondeterministic kernel outputs -------------------------------

def kernel_with_jitter(values):
    rng = np.random.default_rng()  # unseeded
    noise = rng.normal(size=values.shape)
    return values + noise  # RD402: kernel output depends on RNG


def helper_clock():
    return time.perf_counter()


def kernel_with_helper_clock(values):
    scale = helper_clock()  # taint through an intra-file call
    return values * scale  # RD402: kernel output depends on the clock


# -- RD501: silent float32 -> float64 upcasts -----------------------------

def accumulate(x):
    acc = np.zeros(x.shape)  # implicit float64 (no dtype=)
    acc = acc + x  # RD501: dtype-preserving param meets hard float64
    return acc


def widen_constant(x):
    lo = x.astype(np.float32)
    hi = np.float64(2.0)
    return lo * hi  # RD501: known float32 meets hard float64


# -- RD601: impure contract targets ---------------------------------------

_CALLS = []


def noisy_validator(plan):
    _CALLS.append(plan)  # mutates module state
    return True


def checked(*contracts):
    def wrap(fn):
        return fn

    return wrap


def validates(*names):
    return names


@checked(noisy_validator)
def build(plan):
    return plan


class Plan:
    def validate(self):
        self.checked = True  # RD601: validate mutates the plan
        return True


@checked(validates("plan"))
def run(plan):
    return plan


# -- RD602: observable effects before fault points ------------------------

def fault_point(site):
    return None


def unsafe_stage(out, x):
    out[0] = x  # observable before the fault
    fault_point("stage.unsafe")  # RD602
    out[1] = x
    return out
