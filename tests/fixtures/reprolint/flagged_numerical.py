"""Fixture: every RD2xx numerical-safety rule fires in this file."""

import numpy as np


def compare(val):
    """RD201: exact float comparison."""
    if val == 0.1:
        return True
    return val != -2.5


def narrow(arr):
    """RD202: narrowing index casts."""
    a = arr.astype(np.int32)
    b = arr.astype("int16")
    c = arr.astype(dtype=np.uint8)
    return a, b, c


def spmm_like(csr, X):
    """RD203: public entry point with an unvalidated sparse operand."""
    return csr, X
