"""Fixture: RD105 stays silent — scratch is pooled, small, or one-time."""

import numpy as np

nnz = 128
TABLE = np.zeros(nnz)  # module level: allocated once at import, not per call


def pooled(csr, X, *, workspace=None):
    """Allowed: the function threads ``workspace`` (pool handles reuse)."""
    return np.zeros(csr.nnz, dtype=np.float64)


def outer(csr, *, workspace=None):
    """Allowed: an enclosing function already accepts ``workspace``."""

    def inner():
        return np.empty(csr.nnz)

    return inner()


def row_sized(csr, K):
    """Allowed: output-shaped, not nnz-proportional."""
    return np.zeros((csr.n_rows, K))
