"""Fixture: every RD1xx determinism rule fires in this file."""

import time

import numpy as np


def make_generator():
    """RD101: unseeded generator."""
    return np.random.default_rng()


def make_generator_none():
    """RD101: explicit ``None`` seed is still unseeded."""
    return np.random.default_rng(None)


def legacy_calls():
    """RD102: legacy global-state RNG API."""
    np.random.seed(0)
    return np.random.rand(3)


def iterate_sets(items):
    """RD103: set iteration order is hash-dependent."""
    for item in {1, 2, 3}:
        pass
    for item in set(items):
        pass
    return [x for x in {v for v in items}]


def stamp():
    """RD104: wall-clock reads."""
    return time.time(), time.perf_counter()
