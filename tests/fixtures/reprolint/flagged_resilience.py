"""Fixture: every RD106 broad-except form fires in this file."""


def swallow_exception():
    """RD106: except Exception."""
    try:
        return 1
    except Exception:
        return None


def swallow_base():
    """RD106: except BaseException."""
    try:
        return 1
    except BaseException:
        return None


def swallow_in_tuple():
    """RD106: Exception hiding inside a tuple of types."""
    try:
        return 1
    except (ValueError, Exception):
        return None
