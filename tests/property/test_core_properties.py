"""Hypothesis property tests for clustering, tiling, cache and the pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.aspt import tile_matrix
from repro.clustering import MaxHeap, UnionFind, cluster_rows
from repro.gpu.cache import approx_lru_hits, lru_hits, set_associative_hits
from repro.kernels import sddmm, spmm
from repro.reorder import ReorderConfig, build_plan

from test_sparse_properties import csr_matrices


class TestUnionFindProperties:
    @given(st.integers(1, 40), st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60))
    def test_sizes_partition(self, n, unions):
        uf = UnionFind(n)
        for i, j in unions:
            if i < n and j < n:
                uf.union_by_size(i, j)
        roots = {uf.root(i) for i in range(n)}
        assert sum(int(uf.size[r]) for r in roots) == n
        assert len(roots) == uf.n_sets

    @given(st.integers(1, 40), st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60))
    def test_root_is_idempotent(self, n, unions):
        uf = UnionFind(n)
        for i, j in unions:
            if i < n and j < n:
                uf.union_by_size(i, j)
        for i in range(n):
            r = uf.root(i)
            assert uf.root(r) == r


class TestHeapProperties:
    @given(st.lists(st.floats(0, 1, allow_nan=False), max_size=200))
    def test_pops_sorted_descending(self, sims):
        h = MaxHeap()
        for k, s in enumerate(sims):
            h.push(s, k, k + 1)
        out = [h.pop()[0] for _ in range(len(sims))]
        assert out == sorted(sims, reverse=True)

    @given(
        hnp.arrays(np.float64, st.integers(0, 100), elements=st.floats(0, 1)),
    )
    def test_bulk_build_equals_incremental(self, sims):
        bulk = MaxHeap.from_arrays(sims, np.arange(sims.size), np.arange(sims.size))
        inc = MaxHeap()
        for k, s in enumerate(sims):
            inc.push(float(s), k, k)
        a = [bulk.pop()[0] for _ in range(sims.size)]
        b = [inc.pop()[0] for _ in range(sims.size)]
        assert a == b


class TestCacheProperties:
    streams = hnp.arrays(np.int64, st.integers(0, 200), elements=st.integers(0, 25))

    @given(streams, st.integers(1, 30))
    def test_hits_bounded(self, stream, cap):
        stats = lru_hits(stream, cap)
        assert 0 <= stats.hits <= max(0, stream.size - 1)

    @given(streams, st.integers(1, 15))
    def test_capacity_monotonicity(self, stream, cap):
        small = lru_hits(stream, cap).hits
        large = lru_hits(stream, cap + 5).hits
        assert large >= small

    @given(streams, st.integers(1, 30))
    def test_approx_is_lower_bound(self, stream, cap):
        assert approx_lru_hits(stream, cap, slack=1.0).hits <= lru_hits(stream, cap).hits

    @given(streams, st.integers(1, 8))
    def test_single_set_equals_fully_associative(self, stream, ways):
        assert set_associative_hits(stream, 1, ways).hits == lru_hits(stream, ways).hits

    @given(streams)
    def test_infinite_capacity_only_cold_misses(self, stream):
        stats = lru_hits(stream, 10**6)
        distinct = np.unique(stream).size
        assert stats.misses == distinct


class TestTilingProperties:
    @given(csr_matrices(), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=60)
    def test_partition_exact(self, csr, panel_height, threshold):
        tiled = tile_matrix(csr, panel_height, threshold)
        assert tiled.nnz_dense + tiled.nnz_sparse == csr.nnz
        np.testing.assert_allclose(
            tiled.dense_part.to_dense() + tiled.sparse_part.to_dense(),
            csr.to_dense(),
        )

    @given(csr_matrices(), st.integers(1, 6))
    @settings(max_examples=60)
    def test_dense_columns_meet_threshold(self, csr, panel_height):
        tiled = tile_matrix(csr, panel_height, 2)
        # Every dense column instance has >= 2 nnz within its panel.
        dense = tiled.dense_part
        if dense.nnz == 0:
            return
        panel_ids = dense.row_ids() // panel_height
        keys = panel_ids * csr.n_cols + dense.colidx
        _, counts = np.unique(keys, return_counts=True)
        assert counts.min() >= 2

    @given(csr_matrices(), st.integers(1, 6), st.integers(1, 3))
    @settings(max_examples=40)
    def test_max_dense_cols_respected(self, csr, panel_height, cap):
        tiled = tile_matrix(csr, panel_height, 2, max_dense_cols=cap)
        for cols in tiled.panel_dense_cols:
            assert cols.size <= cap


class TestPipelineProperties:
    @given(csr_matrices(max_dim=10, max_nnz=30), st.integers(1, 4), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_plan_preserves_spmm(self, csr, panel_height, seed):
        config = ReorderConfig(
            siglen=16, panel_height=panel_height, lsh_seed=seed,
            force_round1=True, force_round2=True, threshold_size=max(2, panel_height),
        )
        plan = build_plan(csr, config)
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(csr.n_cols, 3))
        np.testing.assert_allclose(plan.spmm(X), spmm(csr, X), rtol=1e-9, atol=1e-9)

    @given(csr_matrices(max_dim=10, max_nnz=30), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_plan_preserves_sddmm(self, csr, panel_height):
        config = ReorderConfig(
            siglen=16, panel_height=panel_height,
            force_round1=True, force_round2=True,
        )
        plan = build_plan(csr, config)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(csr.n_cols, 3))
        Y = rng.normal(size=(csr.n_rows, 3))
        got = plan.sddmm(X, Y)
        want = sddmm(csr, X, Y)
        assert got.same_pattern(want)
        np.testing.assert_allclose(got.values, want.values, rtol=1e-9, atol=1e-9)

    @given(csr_matrices(max_dim=10, max_nnz=30))
    @settings(max_examples=25, deadline=None)
    def test_row_order_is_permutation(self, csr):
        plan = build_plan(csr, ReorderConfig(siglen=16, panel_height=3, force_round1=True))
        assert sorted(plan.row_order.tolist()) == list(range(csr.n_rows))

    @given(csr_matrices(max_dim=10, max_nnz=30))
    @settings(max_examples=25, deadline=None)
    def test_clustering_order_always_permutation(self, csr):
        from repro.similarity import LSHIndex

        pairs, sims = LSHIndex(siglen=16, bsize=2, seed=1).candidate_pairs(csr)
        result = cluster_rows(csr, pairs, sims, threshold_size=4)
        assert sorted(result.order.tolist()) == list(range(csr.n_rows))
