"""Hypothesis property tests for the sparse substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    coo_to_csr,
    csc_to_csr,
    csr_to_csc,
    permute_csr_columns,
    permute_csr_rows,
    transpose_csr,
)
from repro.util.arrayops import (
    counts_to_offsets,
    lengths_from_offsets,
    offsets_to_row_ids,
    rank_of_permutation,
)


@st.composite
def coo_matrices(draw, max_dim=12, max_nnz=40):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        hnp.arrays(np.int64, nnz, elements=st.integers(0, m - 1))
    )
    cols = draw(
        hnp.arrays(np.int64, nnz, elements=st.integers(0, n - 1))
    )
    values = draw(
        hnp.arrays(
            np.float64,
            nnz,
            elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        )
    )
    return COOMatrix.from_arrays((m, n), rows, cols, values)


@st.composite
def csr_matrices(draw, max_dim=12, max_nnz=40):
    return draw(coo_matrices(max_dim, max_nnz)).to_csr()


class TestArrayOps:
    @given(hnp.arrays(np.int64, st.integers(0, 30), elements=st.integers(0, 6)))
    def test_counts_offsets_roundtrip(self, counts):
        offsets = counts_to_offsets(counts)
        np.testing.assert_array_equal(lengths_from_offsets(offsets), counts)

    @given(hnp.arrays(np.int64, st.integers(0, 30), elements=st.integers(0, 6)))
    def test_offsets_to_row_ids_matches_repeat(self, counts):
        offsets = counts_to_offsets(counts)
        expected = np.repeat(np.arange(counts.size), counts)
        np.testing.assert_array_equal(offsets_to_row_ids(offsets), expected)

    @given(st.integers(1, 50), st.randoms())
    def test_rank_of_permutation_is_inverse(self, n, rnd):
        perm = np.array(rnd.sample(range(n), n), dtype=np.int64)
        inv = rank_of_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(n))


class TestCSRInvariants:
    @given(coo_matrices())
    @settings(max_examples=60)
    def test_coo_to_csr_preserves_dense(self, coo):
        csr = coo_to_csr(coo)
        csr.validate()
        np.testing.assert_allclose(csr.to_dense(), coo.to_dense())

    @given(csr_matrices())
    @settings(max_examples=60)
    def test_csc_roundtrip(self, csr):
        back = csc_to_csr(csr_to_csc(csr))
        assert back.allclose(csr)

    @given(csr_matrices())
    @settings(max_examples=60)
    def test_transpose_involution(self, csr):
        assert transpose_csr(transpose_csr(csr)).allclose(csr)

    @given(csr_matrices())
    @settings(max_examples=60)
    def test_transpose_matches_dense(self, csr):
        np.testing.assert_allclose(
            transpose_csr(csr).to_dense(), csr.to_dense().T
        )

    @given(csr_matrices(), st.randoms())
    @settings(max_examples=60)
    def test_row_permutation_matches_dense(self, csr, rnd):
        order = np.array(rnd.sample(range(csr.n_rows), csr.n_rows), dtype=np.int64)
        got = permute_csr_rows(csr, order)
        got.validate()
        np.testing.assert_allclose(got.to_dense(), csr.to_dense()[order])

    @given(csr_matrices(), st.randoms())
    @settings(max_examples=60)
    def test_row_permutation_inverse_restores(self, csr, rnd):
        order = np.array(rnd.sample(range(csr.n_rows), csr.n_rows), dtype=np.int64)
        back = permute_csr_rows(permute_csr_rows(csr, order), rank_of_permutation(order))
        assert back.allclose(csr)

    @given(csr_matrices(), st.randoms())
    @settings(max_examples=60)
    def test_column_permutation_preserves_nnz_and_canonical(self, csr, rnd):
        col_map = np.array(rnd.sample(range(csr.n_cols), csr.n_cols), dtype=np.int64)
        got = permute_csr_columns(csr, col_map)
        got.validate()
        assert got.nnz == csr.nnz
