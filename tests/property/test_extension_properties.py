"""Hypothesis property tests for the extension modules (ELL, measures,
online reorderer, SpMV)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import spmm, spmv
from repro.reorder import OnlineReorderer
from repro.similarity import MEASURES, jaccard_for_pairs, similarity_for_pairs
from repro.sparse import ELLMatrix

from test_sparse_properties import csr_matrices


class TestELLProperties:
    @given(csr_matrices())
    @settings(max_examples=50)
    def test_roundtrip(self, csr):
        ell = ELLMatrix.from_csr(csr)
        ell.validate()
        assert ell.to_csr().allclose(csr)

    @given(csr_matrices())
    @settings(max_examples=50)
    def test_nnz_preserved(self, csr):
        assert ELLMatrix.from_csr(csr).nnz == csr.nnz

    @given(csr_matrices(), st.integers(1, 4), st.integers(0, 100))
    @settings(max_examples=40)
    def test_spmm_matches_csr(self, csr, k, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(csr.n_cols, k))
        np.testing.assert_allclose(
            ELLMatrix.from_csr(csr).spmm(X), spmm(csr, X), rtol=1e-9, atol=1e-9
        )

    @given(csr_matrices())
    @settings(max_examples=40)
    def test_padding_ratio_bounds(self, csr):
        ratio = ELLMatrix.from_csr(csr).padding_ratio
        assert 0.0 <= ratio < 1.0 or (csr.nnz == 0 and ratio == 1.0)


class TestMeasureProperties:
    @given(csr_matrices(), st.sampled_from(MEASURES))
    @settings(max_examples=40)
    def test_bounded_and_symmetric(self, csr, measure):
        n = csr.n_rows
        pairs = np.array([[i, j] for i in range(n) for j in range(n)], dtype=np.int64)
        out = similarity_for_pairs(csr, pairs, measure).reshape(n, n)
        assert (out >= -1e-12).all() and (out <= 1.0 + 1e-12).all()
        np.testing.assert_allclose(out, out.T, atol=1e-12)

    @given(csr_matrices())
    @settings(max_examples=40)
    def test_measure_ordering(self, csr):
        # For any pair: jaccard <= dice <= cosine... actually the provable
        # chain is jaccard <= dice <= min(cosine, overlap) <= 1.
        n = csr.n_rows
        pairs = np.array(
            [[i, j] for i in range(n) for j in range(i + 1, n)], dtype=np.int64
        )
        if pairs.size == 0:
            return
        j = similarity_for_pairs(csr, pairs, "jaccard")
        d = similarity_for_pairs(csr, pairs, "dice")
        c = similarity_for_pairs(csr, pairs, "cosine")
        o = similarity_for_pairs(csr, pairs, "overlap")
        assert (j <= d + 1e-12).all()
        assert (d <= c + 1e-12).all()
        assert (c <= o + 1e-12).all()

    @given(csr_matrices())
    @settings(max_examples=30)
    def test_jaccard_consistency(self, csr):
        n = csr.n_rows
        pairs = np.array([[i, (i + 1) % n] for i in range(n)], dtype=np.int64)
        np.testing.assert_allclose(
            similarity_for_pairs(csr, pairs, "jaccard"),
            jaccard_for_pairs(csr, pairs),
        )


class TestSpmvProperties:
    @given(csr_matrices(), st.integers(0, 100))
    @settings(max_examples=50)
    def test_matches_dense(self, csr, seed):
        x = np.random.default_rng(seed).normal(size=csr.n_cols)
        np.testing.assert_allclose(
            spmv(csr, x), csr.to_dense() @ x, rtol=1e-9, atol=1e-9
        )

    @given(csr_matrices())
    @settings(max_examples=40)
    def test_equals_spmm_with_k1(self, csr):
        x = np.linspace(-1, 1, csr.n_cols)
        np.testing.assert_allclose(
            spmv(csr, x), spmm(csr, x[:, None])[:, 0], rtol=1e-9, atol=1e-9
        )


class TestOnlineReordererProperties:
    @given(csr_matrices(max_dim=10, max_nnz=30))
    @settings(max_examples=30, deadline=None)
    def test_order_is_permutation(self, csr):
        idx = OnlineReorderer(csr.n_cols, siglen=16, seed=0)
        idx.insert_matrix(csr)
        assert sorted(idx.order().tolist()) == list(range(csr.n_rows))

    @given(csr_matrices(max_dim=10, max_nnz=30))
    @settings(max_examples=30, deadline=None)
    def test_cluster_sizes_partition_rows(self, csr):
        idx = OnlineReorderer(csr.n_cols, siglen=16, seed=0)
        idx.insert_matrix(csr)
        assert int(idx.cluster_sizes().sum()) == csr.n_rows

    @given(csr_matrices(max_dim=10, max_nnz=30), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_max_cluster_respected(self, csr, cap):
        idx = OnlineReorderer(csr.n_cols, siglen=16, max_cluster=cap, seed=0)
        idx.insert_matrix(csr)
        if idx.n_rows:
            assert int(idx.cluster_sizes().max()) <= cap
