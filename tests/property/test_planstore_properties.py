"""Hypothesis property tests for the plan-store fingerprint.

The fingerprint's contract is exactly the cache's soundness argument:

* equal patterns => equal keys, whatever the ``values`` (and whatever
  dtype the values arrived in);
* any structural change — one non-zero moved or added, a shape change —
  => a different key;
* any config change => a different key.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.planstore import config_fingerprint, pattern_fingerprint, plan_key
from repro.reorder import ReorderConfig
from repro.sparse import CSRMatrix

from test_sparse_properties import csr_matrices

CFG = ReorderConfig()


def _rebuild_with_values(csr, values):
    return CSRMatrix(csr.shape, csr.rowptr, csr.colidx, values)


class TestValuesIndependence:
    @given(
        csr_matrices(),
        st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=60)
    def test_equal_patterns_equal_keys_regardless_of_values(self, csr, fill):
        other = _rebuild_with_values(
            csr, np.full(csr.nnz, fill if fill != 0.0 else 1.0)
        )
        assert pattern_fingerprint(csr) == pattern_fingerprint(other)
        assert plan_key(csr, CFG) == plan_key(other, CFG)

    @given(csr_matrices())
    @settings(max_examples=60)
    def test_key_stable_across_values_dtype(self, csr):
        """float32 / int32 / float64 values all hash to the same key."""
        base = pattern_fingerprint(csr)
        for dtype in (np.float32, np.int32, np.float16):
            cast = CSRMatrix.from_arrays(
                csr.shape,
                csr.rowptr,
                csr.colidx,
                np.ones(csr.nnz, dtype=dtype),
            )
            assert pattern_fingerprint(cast) == base

    @given(csr_matrices())
    @settings(max_examples=60)
    def test_fingerprint_is_deterministic(self, csr):
        assert pattern_fingerprint(csr) == pattern_fingerprint(csr.copy())


@st.composite
def matrices_with_spare_slot(draw):
    """A CSR matrix plus coordinates of one currently-zero cell.

    Normalised to the pattern matrix (all values 1) so dense round-trips
    below preserve the stored structure exactly; the fingerprint ignores
    values anyway.
    """
    csr = draw(csr_matrices(max_dim=10, max_nnz=30)).pattern()
    dense = csr.to_dense() != 0
    free = np.argwhere(~dense)
    if free.size == 0:  # fully dense: grow a column instead
        csr = CSRMatrix.from_dense(
            np.hstack([csr.to_dense(), np.zeros((csr.n_rows, 1))])
        )
        free = np.array([[0, csr.n_cols - 1]])
    idx = draw(st.integers(0, len(free) - 1))
    return csr, int(free[idx][0]), int(free[idx][1])


class TestStructuralSensitivity:
    @given(matrices_with_spare_slot())
    @settings(max_examples=60)
    def test_adding_one_nonzero_changes_key(self, case):
        csr, r, c = case
        dense = csr.to_dense()
        dense[r, c] = 1.0
        grown = CSRMatrix.from_dense(dense)
        assert grown.nnz == csr.nnz + 1
        assert pattern_fingerprint(grown) != pattern_fingerprint(csr)
        assert plan_key(grown, CFG) != plan_key(csr, CFG)

    @given(matrices_with_spare_slot())
    @settings(max_examples=60)
    def test_moving_one_nonzero_changes_key(self, case):
        csr, r, c = case
        dense = csr.to_dense()
        occupied = np.argwhere(dense != 0)
        if len(occupied) == 0:
            return  # nothing to move in an empty matrix
        src = occupied[0]
        moved = dense.copy()
        moved[r, c] = moved[src[0], src[1]]
        moved[src[0], src[1]] = 0.0
        other = CSRMatrix.from_dense(moved)
        assert other.nnz == csr.nnz
        assert pattern_fingerprint(other) != pattern_fingerprint(csr)

    @given(csr_matrices(max_dim=8, max_nnz=20))
    @settings(max_examples=40)
    def test_padding_shape_changes_key(self, csr):
        """Same nonzero coordinates inside a larger frame is a different
        pattern (the trailing empty rows/cols are real structure)."""
        padded = CSRMatrix.from_arrays(
            (csr.n_rows + 1, csr.n_cols + 1),
            np.append(csr.rowptr, csr.rowptr[-1]),
            csr.colidx,
            csr.values,
        )
        assert pattern_fingerprint(padded) != pattern_fingerprint(csr)


#: ReorderConfig single-field perturbations that must each change the key.
_CONFIG_TWEAKS = [
    {"siglen": 64},
    {"bsize": 4},
    {"threshold_size": 128},
    {"panel_height": 32},
    {"dense_threshold": 3},
    {"max_dense_cols": 7},
    {"dense_ratio_skip": 0.2},
    {"avg_sim_skip": 0.2},
    {"lsh_seed": 1},
    {"bucket_cap": 32},
    {"measure": "overlap"},
    {"force_round1": True},
    {"force_round2": False},
]


class TestConfigSensitivity:
    @given(csr_matrices(max_dim=8, max_nnz=20), st.sampled_from(_CONFIG_TWEAKS))
    @settings(max_examples=40)
    def test_any_config_field_change_changes_key(self, csr, tweak):
        other = dataclasses.replace(CFG, **tweak)
        assert config_fingerprint(other) != config_fingerprint(CFG)
        assert plan_key(csr, other) != plan_key(csr, CFG)

    def test_config_fingerprint_independent_of_instance(self):
        assert config_fingerprint(ReorderConfig()) == config_fingerprint(
            ReorderConfig()
        )
