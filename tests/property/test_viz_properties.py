"""Hypothesis property tests for the viz substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.viz import nice_ticks, svg_lines, svg_scatter

finite = st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False)


class TestNiceTicksProperties:
    @given(finite, finite)
    def test_sorted_and_bounded_count(self, a, b):
        ticks = nice_ticks(a, b)
        assert ticks == sorted(ticks)
        assert 1 <= len(ticks) <= 12

    @given(finite, finite)
    def test_ticks_inside_range(self, a, b):
        assume(abs(a - b) > 1e-9)
        lo, hi = min(a, b), max(a, b)
        ticks = nice_ticks(lo, hi)
        span = hi - lo
        for t in ticks:
            assert lo - span * 1e-6 <= t <= hi + span * 1e-6

    @given(finite, finite)
    def test_uniform_step(self, a, b):
        assume(abs(a - b) > 1e-6)
        ticks = nice_ticks(min(a, b), max(a, b))
        if len(ticks) >= 3:
            diffs = np.diff(ticks)
            np.testing.assert_allclose(diffs, diffs[0], rtol=1e-6)


class TestChartsNeverCrash:
    @given(
        st.lists(finite, min_size=1, max_size=40),
        st.lists(finite, min_size=1, max_size=40),
    )
    @settings(max_examples=40)
    def test_scatter_always_well_formed(self, xs, ys):
        import xml.etree.ElementTree as ET

        n = min(len(xs), len(ys))
        svg = svg_scatter(
            np.array(xs[:n]), np.array(ys[:n]), ["c"] * n,
            title="T", x_label="x", y_label="y",
        )
        ET.fromstring(svg)

    @given(st.lists(st.lists(finite, min_size=1, max_size=30), min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_lines_always_well_formed(self, series):
        import xml.etree.ElementTree as ET

        svg = svg_lines(
            {f"s{i}": np.array(v) for i, v in enumerate(series)},
            title="T", x_label="x", y_label="y",
        )
        ET.fromstring(svg)
