"""Hypothesis property tests for the observability invariants.

Three families of invariants lock the layer down:

* **Span trees** — for any sequence of (nested) span operations driven
  by an arbitrary monotone clock, children lie strictly inside their
  parents, siblings on one thread never overlap, and the Chrome export
  carries exactly one complete event per closed span.
* **Counters** — monotone under any interleaving of increments, with
  every child increment visible in the parent aggregate.
* **Histograms** — ``sum``/``count``/min/max match the observations, and
  bucket counts always total ``count``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import FakeClock
from repro.observability import Counter, Histogram, Tracer

# --- strategies -------------------------------------------------------------

#: A nesting program: "push" opens a child span, "pop" closes the
#: innermost open span (ignored when only the root is open).
nesting_ops = st.lists(
    st.sampled_from(["push", "pop"]), min_size=0, max_size=40
)

clock_steps = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)


def run_program(ops, step=1.0):
    """Execute a push/pop program under one root span; return the tracer."""
    tracer = Tracer(clock=FakeClock(step=step), pid=1)
    stack = []
    root = tracer.span("root")
    root.__enter__()
    stack.append(root)
    counter = 0
    for op in ops:
        if op == "push":
            counter += 1
            child = tracer.span(f"s{counter}")
            child.__enter__()
            stack.append(child)
        elif len(stack) > 1:
            stack.pop().__exit__(None, None, None)
    while stack:
        stack.pop().__exit__(None, None, None)
    return tracer


def walk(span_dict, depth=0):
    yield span_dict, depth
    for child in span_dict.get("children", ()):
        yield from walk(child, depth + 1)


class TestSpanTreeInvariants:
    @given(nesting_ops, clock_steps)
    @settings(max_examples=120)
    def test_children_nest_strictly_inside_parents(self, ops, step):
        tracer = run_program(ops, step)
        (root,) = tracer.to_dicts()
        for node, _ in walk(root):
            start = node["start_s"]
            end = start + node["duration_s"]
            assert node["duration_s"] > 0  # every clock read advances
            for child in node.get("children", ()):
                child_end = child["start_s"] + child["duration_s"]
                assert start < child["start_s"]
                assert child_end < end

    @given(nesting_ops, clock_steps)
    @settings(max_examples=120)
    def test_siblings_on_one_thread_never_overlap(self, ops, step):
        tracer = run_program(ops, step)
        (root,) = tracer.to_dicts()
        for node, _ in walk(root):
            children = node.get("children", ())
            for earlier, later in zip(children, children[1:]):
                earlier_end = earlier["start_s"] + earlier["duration_s"]
                assert earlier_end < later["start_s"]

    @given(nesting_ops)
    @settings(max_examples=120)
    def test_chrome_export_has_one_event_per_span(self, ops):
        tracer = run_program(ops)
        events = tracer.chrome_trace()["traceEvents"]
        (root,) = tracer.to_dicts()
        spans = list(walk(root))
        assert len(events) == len(spans)
        assert sorted(e["name"] for e in events) == sorted(
            node["name"] for node, _ in spans
        )
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] > 0

    @given(nesting_ops, clock_steps)
    @settings(max_examples=60)
    def test_to_dicts_is_json_clean(self, ops, step):
        import json

        tracer = run_program(ops, step)
        json.dumps(tracer.to_dicts())
        json.dumps(tracer.chrome_trace())


class TestCounterInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
    @settings(max_examples=120)
    def test_counter_value_is_the_sum_of_increments(self, increments):
        c = Counter("c")
        seen = 0
        for n in increments:
            c.inc(n)
            assert c.value >= seen  # monotone at every step
            seen = c.value
        assert c.value == sum(increments)

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 100)), max_size=60
        )
    )
    @settings(max_examples=120)
    def test_children_roll_up_exactly(self, ops):
        parent = Counter("p")
        children = [parent.child() for _ in range(3)]
        direct = 0
        for child_index, n in ops:
            children[child_index].inc(n)
        for child in children:
            direct += child.value
        assert parent.value == direct
        assert [c.value for c in children] == [
            sum(n for i, n in ops if i == k) for k in range(3)
        ]


class TestHistogramInvariants:
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=80,
        ),
        st.lists(
            st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
            min_size=1, max_size=8, unique=True,
        ),
    )
    @settings(max_examples=120)
    def test_sum_count_minmax_and_bucket_totals(self, values, bounds):
        h = Histogram("h", bounds=tuple(bounds))
        for v in values:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == len(values)
        assert snap["sum"] == sum(float(v) for v in values)
        if values:
            assert snap["min"] == min(values)
            assert snap["max"] == max(values)
        else:
            assert snap["min"] is None and snap["max"] is None
        assert sum(snap["buckets"].values()) == snap["count"]

    @given(
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        )
    )
    @settings(max_examples=120)
    def test_observation_lands_in_the_right_bucket(self, value):
        bounds = (-10.0, 0.0, 10.0)
        h = Histogram("h", bounds=bounds)
        h.observe(value)
        buckets = h.snapshot()["buckets"]
        expected = "inf"
        for bound in bounds:
            if value <= bound:
                expected = str(bound)
                break
        assert buckets[expected] == 1
        assert sum(buckets.values()) == 1
