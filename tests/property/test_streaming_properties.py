"""Hypothesis equivalence suite for the streaming subsystem.

The contract under test is the module contract of
:mod:`repro.streaming.incremental`: everything incremental must be
*indistinguishable* from doing the work from scratch.

* :func:`~repro.streaming.split_into_deltas` replay reproduces the source
  matrix bit for bit;
* an incrementally updated :class:`~repro.streaming.LshState` (signatures,
  band keys, candidate pairs, scores) equals a from-scratch build on the
  mutated matrix;
* the plan returned by :func:`~repro.streaming.apply_delta` — patched *or*
  replanned — is decision-identical to a fresh
  :func:`~repro.reorder.build_plan` on the mutated matrix, and its
  multiplies are bitwise-equal, per kernel backend and per ladder rung.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.kernels import KernelSession
from repro.reorder import ReorderConfig, build_plan
from repro.resilience import ladder_rungs
from repro.streaming import DeltaBatch, LshState, apply_delta, split_into_deltas

from test_sparse_properties import csr_matrices

#: Small but fully active pipeline: round 1 forced on so the LSH state /
#: clustering-reuse machinery is exercised on every example.
CFG = ReorderConfig(
    siglen=16, bsize=4, panel_height=4, threshold_size=16, force_round1=True
)


@st.composite
def matrix_with_add_delta(draw):
    """A CSR matrix plus a valid add-mode delta (possibly growing rows)."""
    csr = draw(csr_matrices(max_dim=10, max_nnz=30))
    assume(csr.n_rows > 0 and csr.n_cols > 0)
    seed = draw(st.integers(0, 2**16))
    k = draw(st.integers(1, 8))
    grow = draw(st.integers(0, 2))
    rng = np.random.default_rng(seed)
    delta = DeltaBatch(
        rows=rng.integers(0, csr.n_rows + grow, size=k),
        cols=rng.integers(0, csr.n_cols, size=k),
        values=rng.normal(size=k),
        new_rows=grow,
    )
    return csr, delta


@st.composite
def matrix_with_set_delta(draw):
    """A CSR matrix plus a value-only delta over existing entries."""
    csr = draw(csr_matrices(max_dim=10, max_nnz=30))
    assume(csr.nnz > 0)
    seed = draw(st.integers(0, 2**16))
    k = draw(st.integers(1, min(8, csr.nnz)))
    rng = np.random.default_rng(seed)
    idx = np.sort(rng.choice(csr.nnz, size=k, replace=False))
    delta = DeltaBatch(
        rows=csr.row_ids()[idx],
        cols=csr.colidx[idx],
        values=rng.normal(size=k),
        mode="set",
    )
    return csr, delta


def assert_plans_identical(patched, fresh):
    """Decision identity: same orders, same tiling, same stats."""
    np.testing.assert_array_equal(patched.row_order, fresh.row_order)
    np.testing.assert_array_equal(patched.remainder_order, fresh.remainder_order)
    assert patched.stats == fresh.stats
    for part in ("dense_part", "sparse_part"):
        p, f = getattr(patched.tiled, part), getattr(fresh.tiled, part)
        np.testing.assert_array_equal(p.rowptr, f.rowptr)
        np.testing.assert_array_equal(p.colidx, f.colidx)
        np.testing.assert_array_equal(p.values, f.values)
    np.testing.assert_array_equal(patched.remainder.values, fresh.remainder.values)


def assert_bitwise_spmm(patched, fresh, seed=3, k=4):
    x = np.random.default_rng(seed).normal(size=(fresh.original.n_cols, k))
    np.testing.assert_array_equal(patched.spmm(x), fresh.spmm(x))


class TestSplitReplay:
    @given(csr_matrices(max_dim=10, max_nnz=30), st.integers(1, 5), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_replay_reproduces_matrix_bitwise(self, csr, n_batches, grow):
        base, deltas = split_into_deltas(csr, n_batches, seed=1, grow_rows=grow)
        out = base
        for delta in deltas:
            out = delta.apply_to(out)
        assert out.shape == csr.shape
        np.testing.assert_array_equal(out.rowptr, csr.rowptr)
        np.testing.assert_array_equal(out.colidx, csr.colidx)
        np.testing.assert_array_equal(out.values, csr.values)

    @given(csr_matrices(max_dim=10, max_nnz=30), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_every_event_emitted_exactly_once(self, csr, n_batches):
        base, deltas = split_into_deltas(csr, n_batches, seed=2, grow_rows=False)
        assert base.nnz + sum(d.n_entries for d in deltas) >= csr.nnz
        assert [d.timestamp for d in deltas] == sorted(
            d.timestamp for d in deltas
        )


class TestIncrementalState:
    @given(matrix_with_add_delta())
    @settings(max_examples=40, deadline=None)
    def test_state_update_equals_from_scratch(self, case):
        csr, delta = case
        state0 = LshState.build(csr, CFG)
        mutated = delta.apply_to(csr)
        updated, _ = state0.update(
            mutated, delta.dirty_existing_rows(csr.n_rows), delta.new_rows, CFG
        )
        fresh = LshState.build(mutated, CFG)
        np.testing.assert_array_equal(updated.signatures, fresh.signatures)
        np.testing.assert_array_equal(updated.band_keys, fresh.band_keys)
        np.testing.assert_array_equal(updated.pairs, fresh.pairs)
        np.testing.assert_array_equal(updated.sims, fresh.sims)

    @given(matrix_with_set_delta())
    @settings(max_examples=25, deadline=None)
    def test_value_only_delta_leaves_state_invariant(self, case):
        """Signatures and buckets are pattern functions: recomputing the
        dirty rows of a value-only delta must change nothing."""
        csr, delta = case
        state0 = LshState.build(csr, CFG)
        mutated = delta.apply_to(csr)
        updated, _ = state0.update(
            mutated, delta.dirty_existing_rows(csr.n_rows), 0, CFG
        )
        np.testing.assert_array_equal(updated.signatures, state0.signatures)
        np.testing.assert_array_equal(updated.band_keys, state0.band_keys)
        np.testing.assert_array_equal(updated.pairs, state0.pairs)
        np.testing.assert_array_equal(updated.sims, state0.sims)


class TestPatchedPlanEquivalence:
    @given(matrix_with_add_delta())
    @settings(max_examples=25, deadline=None)
    def test_apply_delta_equals_fresh_build(self, case):
        csr, delta = case
        plan0 = build_plan(csr, CFG)
        state0 = LshState.build(csr, CFG)
        update = apply_delta(
            plan0, delta, CFG, state=state0, max_dirty_fraction=1.0
        )
        fresh = build_plan(delta.apply_to(csr), CFG)
        assert update.plan.revision == plan0.revision + 1
        assert_plans_identical(update.plan, fresh)
        assert_bitwise_spmm(update.plan, fresh)

    @given(matrix_with_set_delta())
    @settings(max_examples=25, deadline=None)
    def test_value_only_delta_patches_and_matches(self, case):
        csr, delta = case
        plan0 = build_plan(csr, CFG)
        state0 = LshState.build(csr, CFG)
        update = apply_delta(
            plan0, delta, CFG, state=state0, max_dirty_fraction=1.0
        )
        assert update.report.patched
        assert update.report.reused_clustering
        fresh = build_plan(delta.apply_to(csr), CFG)
        assert_plans_identical(update.plan, fresh)
        assert_bitwise_spmm(update.plan, fresh)

    @given(matrix_with_add_delta())
    @settings(max_examples=15, deadline=None)
    def test_heuristic_path_also_equals_fresh_build(self, case):
        """With the default drift threshold the update may patch *or*
        replan — either way the result must equal a fresh build."""
        csr, delta = case
        plan0 = build_plan(csr, CFG)
        state0 = LshState.build(csr, CFG)
        update = apply_delta(plan0, delta, CFG, state=state0)
        fresh = build_plan(delta.apply_to(csr), CFG)
        assert_plans_identical(update.plan, fresh)
        assert_bitwise_spmm(update.plan, fresh)


@pytest.mark.slow
class TestDeepEquivalence:
    """Deep sweep for the scheduled lane: many more examples and longer
    delta chains than the fast lane's budget allows."""

    @given(matrix_with_add_delta())
    @settings(max_examples=150, deadline=None)
    def test_apply_delta_equals_fresh_build_deep(self, case):
        csr, delta = case
        plan0 = build_plan(csr, CFG)
        state0 = LshState.build(csr, CFG)
        update = apply_delta(
            plan0, delta, CFG, state=state0, max_dirty_fraction=1.0
        )
        fresh = build_plan(delta.apply_to(csr), CFG)
        assert_plans_identical(update.plan, fresh)
        assert_bitwise_spmm(update.plan, fresh)

    @given(csr_matrices(max_dim=12, max_nnz=40), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_chained_updates_track_fresh_builds(self, csr, n_batches):
        """A whole stream of updates: after every batch the maintained
        plan equals a from-scratch build on the current matrix."""
        base, deltas = split_into_deltas(csr, n_batches, seed=7, grow_rows=True)
        sp_plan = build_plan(base, CFG)
        state = LshState.build(base, CFG)
        current = base
        for delta in deltas:
            update = apply_delta(
                sp_plan, delta, CFG, state=state, max_dirty_fraction=1.0
            )
            sp_plan, state = update.plan, update.state
            current = delta.apply_to(current)
            fresh = build_plan(current, CFG)
            assert_plans_identical(sp_plan, fresh)


@pytest.mark.parametrize(
    "label,rung_config",
    ladder_rungs(ReorderConfig(siglen=16, bsize=4, panel_height=4)),
    ids=[r[0] for r in ladder_rungs(ReorderConfig(siglen=16, bsize=4, panel_height=4))],
)
class TestPerLadderRung:
    """apply_delta on a plan built at each ladder rung's config equals a
    fresh build at that rung (the ladder rungs are just configs)."""

    def test_rung_equivalence(self, label, rung_config, rng):
        from conftest import random_csr

        csr = random_csr(rng, 48, 32, density=0.12)
        plan0 = build_plan(csr, rung_config)
        state0 = (
            LshState.build(csr, rung_config)
            if plan0.stats.round1_applied
            else None
        )
        k = 12
        delta = DeltaBatch(
            rows=rng.integers(0, csr.n_rows, size=k),
            cols=rng.integers(0, csr.n_cols, size=k),
            values=rng.normal(size=k),
        )
        update = apply_delta(
            plan0, delta, rung_config, state=state0, max_dirty_fraction=1.0
        )
        fresh = build_plan(delta.apply_to(csr), rung_config)
        assert_plans_identical(update.plan, fresh)
        assert_bitwise_spmm(update.plan, fresh)


class TestPerBackend:
    def test_patched_plan_bitwise_per_backend(self, rng, backend_name):
        """A session on the patched plan and one on the fresh plan produce
        bitwise-identical results on every registered backend."""
        from conftest import random_csr

        csr = random_csr(rng, 40, 24, density=0.15)
        config = ReorderConfig(
            siglen=16, bsize=4, panel_height=4, force_round1=True,
            backend=backend_name,
        )
        plan0 = build_plan(csr, config)
        state0 = LshState.build(csr, config)
        k = 6
        delta = DeltaBatch(
            rows=rng.integers(0, csr.n_rows, size=k),
            cols=rng.integers(0, csr.n_cols, size=k),
            values=rng.normal(size=k),
        )
        update = apply_delta(
            plan0, delta, config, state=state0, max_dirty_fraction=1.0
        )
        fresh = build_plan(delta.apply_to(csr), config)
        x = rng.normal(size=(csr.n_cols, 5))
        patched_s = KernelSession(update.plan, backend=backend_name)
        fresh_s = KernelSession(fresh, backend=backend_name)
        try:
            np.testing.assert_array_equal(patched_s.run(x), fresh_s.run(x))
        finally:
            patched_s.close()
            fresh_s.close()
