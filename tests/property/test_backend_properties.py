"""Hypothesis properties for the compiled kernel backends.

The differential matrix (tests/unit/test_backend_differential.py) pins
hand-picked corners; these properties sweep random CSR structures and
operand dtypes and assert the same tolerance contract: ``codegen`` is
bitwise-equal to the ``numpy`` reference, ``numba`` (when importable)
within 1 ULP, and within each backend the workspace-pooled path is
bitwise-identical to the direct path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import KernelSession, spmm, spmv
from repro.kernels.backends import available_backends
from repro.util.workspace import WorkspacePool

from test_sparse_properties import csr_matrices

#: Backends that are importable here; the full set runs in the CI
#: ``backends`` lane where numba is installed.
AVAILABLE = tuple(available_backends())


def _assert_matches(backend_name, got, reference):
    if backend_name == "numba":
        np.testing.assert_array_max_ulp(got, reference, maxulp=1)
    else:
        np.testing.assert_array_equal(got, reference)


class TestBackendSpmmProperties:
    @pytest.mark.parametrize("backend_name", AVAILABLE)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64],
                             ids=lambda d: d.__name__)
    @given(csr=csr_matrices(), k=st.integers(0, 9), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_spmm_matches_numpy_reference(self, backend_name, dtype, csr, k, seed):
        X = np.random.default_rng(seed).normal(
            size=(csr.n_cols, k)
        ).astype(dtype)
        reference = spmm(csr, X)
        _assert_matches(backend_name, spmm(csr, X, backend=backend_name), reference)

    @pytest.mark.parametrize("backend_name", AVAILABLE)
    @given(csr=csr_matrices(), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_spmv_matches_numpy_reference(self, backend_name, csr, seed):
        x = np.random.default_rng(seed).normal(size=csr.n_cols)
        reference = spmv(csr, x)
        _assert_matches(backend_name, spmv(csr, x, backend=backend_name), reference)


class TestPooledVsDirectProperties:
    @pytest.mark.parametrize("backend_name", AVAILABLE)
    @given(csr=csr_matrices(), k=st.integers(1, 9), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_pooled_session_bitwise_identical_to_direct(
        self, backend_name, csr, k, seed
    ):
        X = np.random.default_rng(seed).normal(size=(csr.n_cols, k))
        pooled = KernelSession(csr, backend=backend_name, pool=WorkspacePool())
        direct = KernelSession(csr, backend=backend_name, pool=None)
        try:
            np.testing.assert_array_equal(pooled.run(X), direct.run(X))
        finally:
            pooled.close()
            direct.close()
