"""Hypothesis property tests for Jaccard / MinHash / LSH."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    average_consecutive_similarity,
    jaccard_for_pairs,
    jaccard_rows,
    lsh_candidate_pairs,
    minhash_signatures,
    pairwise_jaccard_dense,
)
from repro.sparse import COOMatrix

from test_sparse_properties import csr_matrices


class TestJaccardProperties:
    @given(csr_matrices())
    @settings(max_examples=50)
    def test_bounds(self, csr):
        full = pairwise_jaccard_dense(csr)
        assert (full >= 0.0).all() and (full <= 1.0).all()

    @given(csr_matrices())
    @settings(max_examples=50)
    def test_symmetry(self, csr):
        full = pairwise_jaccard_dense(csr)
        np.testing.assert_allclose(full, full.T)

    @given(csr_matrices())
    @settings(max_examples=50)
    def test_self_similarity_one_iff_nonempty(self, csr):
        lengths = csr.row_lengths()
        for i in range(csr.n_rows):
            expected = 1.0 if lengths[i] else 0.0
            assert jaccard_rows(csr, i, i) == expected

    @given(csr_matrices())
    @settings(max_examples=40)
    def test_batch_matches_scalar(self, csr):
        n = csr.n_rows
        pairs = np.array(
            [[i, j] for i in range(n) for j in range(n)], dtype=np.int64
        )
        batch = jaccard_for_pairs(csr, pairs)
        for (i, j), s in zip(pairs, batch):
            assert abs(s - jaccard_rows(csr, int(i), int(j))) < 1e-12

    @given(csr_matrices())
    @settings(max_examples=40)
    def test_average_consecutive_in_unit_interval(self, csr):
        avg = average_consecutive_similarity(csr)
        assert 0.0 <= avg <= 1.0

    @given(csr_matrices(), st.randoms())
    @settings(max_examples=40)
    def test_jaccard_invariant_to_values(self, csr, rnd):
        # Jaccard is purely structural: replacing stored values (even
        # explicit zeros) must not change any similarity.
        scaled = csr.with_values(
            np.array([rnd.uniform(0.1, 9) for _ in range(csr.nnz)])
        )
        np.testing.assert_allclose(
            pairwise_jaccard_dense(csr), pairwise_jaccard_dense(scaled)
        )


class TestMinHashProperties:
    @given(csr_matrices(), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_identical_rows_identical_signatures(self, csr, seed):
        # "Identical" means identical *stored support* — explicit zeros are
        # stored entries and participate in reuse, exactly like the paper's
        # structural view of a row.
        sig = minhash_signatures(csr, 16, seed=seed)
        for i in range(csr.n_rows):
            for j in range(i + 1, csr.n_rows):
                if np.array_equal(csr.row_cols(i), csr.row_cols(j)):
                    np.testing.assert_array_equal(sig[i], sig[j])

    @given(csr_matrices(), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_signature_deterministic(self, csr, seed):
        a = minhash_signatures(csr, 8, seed=seed)
        b = minhash_signatures(csr, 8, seed=seed)
        np.testing.assert_array_equal(a, b)


class TestLSHProperties:
    @given(csr_matrices(), st.integers(0, 100))
    @settings(max_examples=30)
    def test_pairs_valid(self, csr, seed):
        sig = minhash_signatures(csr, 16, seed=seed)
        pairs = lsh_candidate_pairs(sig, 2, seed=seed)
        if pairs.size:
            assert (pairs[:, 0] < pairs[:, 1]).all()
            assert pairs.min() >= 0 and pairs.max() < csr.n_rows

    @given(csr_matrices())
    @settings(max_examples=30)
    def test_identical_rows_are_candidates(self, csr):
        # With bsize=1 every identical (non-empty) pair must be found.
        sig = minhash_signatures(csr, 8, seed=0)
        pairs = set(map(tuple, lsh_candidate_pairs(sig, 1, seed=0, bucket_cap=None).tolist()))
        lengths = csr.row_lengths()
        for i in range(csr.n_rows):
            for j in range(i + 1, csr.n_rows):
                if lengths[i] and np.array_equal(csr.row_cols(i), csr.row_cols(j)):
                    assert (i, j) in pairs
