"""Oracle tests for cached plans.

A plan served from the disk tier must multiply exactly like a freshly
built plan *and* like ``scipy.sparse`` on the same raw data — including
over degenerate shapes (empty matrix, single row, all-dense, all-sparse).
These are the tests that make cache corruption a detectable event rather
than a silent wrong answer.
"""

import numpy as np
import pytest

sp = pytest.importorskip("scipy.sparse")

from repro.datasets import bipartite_ratings, hidden_clusters, rmat
from repro.kernels import sddmm
from repro.planstore import PlanStore
from repro.reorder import ReorderConfig, build_plan
from repro.sparse import CSRMatrix

CFG = ReorderConfig(siglen=32, panel_height=8)


def to_scipy(csr):
    return sp.csr_matrix((csr.values, csr.colidx, csr.rowptr), shape=csr.shape)


def _warm_from_disk(matrix, config, tmp_path):
    """Build cold through one store, then reload through a fresh store so
    the plan really comes off disk (empty memory tier)."""
    cold_store = PlanStore(cache_dir=tmp_path)
    cold = build_plan(matrix, config, cache=cold_store)
    warm_store = PlanStore(cache_dir=tmp_path)
    warm = build_plan(matrix, config, cache=warm_store)
    assert warm_store.stats()["disk"]["hits"] == 1, "plan did not come from disk"
    return cold, warm


MATRICES = [
    ("hidden", lambda: hidden_clusters(32, 8, 512, 12, noise=0.1, seed=1)),
    ("rmat", lambda: rmat(8, 8, seed=1)),
    ("bipartite", lambda: bipartite_ratings(300, 200, 10, seed=1)),
]


@pytest.mark.parametrize("name,factory", MATRICES, ids=[m[0] for m in MATRICES])
class TestCachedPlanAgainstOracles:
    def test_spmm_matches_fresh_plan_and_scipy(self, name, factory, tmp_path, rng):
        m = factory()
        cold, warm = _warm_from_disk(m, CFG, tmp_path)
        X = rng.normal(size=(m.n_cols, 8))
        want = to_scipy(m) @ X
        np.testing.assert_array_equal(warm.spmm(X), cold.spmm(X))
        np.testing.assert_allclose(warm.spmm(X), want, rtol=1e-10, atol=1e-8)

    def test_sddmm_matches_fresh_plan_and_scipy(self, name, factory, tmp_path, rng):
        m = factory()
        cold, warm = _warm_from_disk(m, CFG, tmp_path)
        X = rng.normal(size=(m.n_cols, 6))
        Y = rng.normal(size=(m.n_rows, 6))
        got = warm.sddmm(X, Y)
        fresh = cold.sddmm(X, Y)
        assert got.same_pattern(fresh)
        np.testing.assert_allclose(got.values, fresh.values, rtol=1e-10, atol=1e-9)
        # scipy oracle: sample (Y @ X.T) at the stored coordinates.
        expected = (
            np.einsum("pk,pk->p", Y[m.row_ids()], X[m.colidx]) * to_scipy(m).data
        )
        oracle = sddmm(m, X, Y)
        assert got.same_pattern(oracle)
        np.testing.assert_allclose(got.values, expected, rtol=1e-10, atol=1e-9)


def _all_dense(n=12):
    return CSRMatrix.from_dense(np.arange(1.0, n * n + 1).reshape(n, n))


def _all_sparse(n=16):
    return CSRMatrix.from_dense(np.diag(np.arange(1.0, n + 1)))


DEGENERATE = [
    ("empty", lambda: CSRMatrix.empty((5, 4))),
    ("single_row", lambda: CSRMatrix.from_dense([[0.0, 2.0, 0.0, 3.0]])),
    ("all_dense", _all_dense),
    ("all_sparse", _all_sparse),
]


@pytest.mark.parametrize("name,factory", DEGENERATE, ids=[d[0] for d in DEGENERATE])
class TestDegenerateRoundTrip:
    def test_disk_round_trip_and_oracle(self, name, factory, tmp_path, rng):
        m = factory()
        config = ReorderConfig(siglen=16, panel_height=4)
        cold, warm = _warm_from_disk(m, config, tmp_path)
        np.testing.assert_array_equal(warm.row_order, cold.row_order)
        np.testing.assert_array_equal(warm.remainder_order, cold.remainder_order)
        X = rng.normal(size=(m.n_cols, 4))
        np.testing.assert_array_equal(warm.spmm(X), cold.spmm(X))
        np.testing.assert_allclose(
            warm.spmm(X), to_scipy(m) @ X, rtol=1e-10, atol=1e-9
        )
        warm.validate()
