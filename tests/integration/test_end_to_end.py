"""Cross-module integration tests: corpus -> pipeline -> kernels -> model."""

import numpy as np
import pytest

from repro.datasets import build_corpus, hidden_clusters, preclustered
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.tables import needing_reordering, records_at_k
from repro.gpu import GPUExecutor
from repro.kernels import sddmm, spmm
from repro.reorder import ReorderConfig, autotune, build_plan
from repro.sparse import read_matrix_market, write_matrix_market


class TestFunctionalEquivalenceAcrossCorpus:
    def test_plans_compute_exact_products(self, rng):
        entries = build_corpus("tiny", repeats=1)
        config = ReorderConfig(siglen=32, panel_height=8)
        # Sample one matrix per category to bound runtime.
        seen = set()
        for entry in entries:
            if entry.category in seen:
                continue
            seen.add(entry.category)
            plan = build_plan(entry.matrix, config)
            X = rng.normal(size=(entry.matrix.n_cols, 4))
            np.testing.assert_allclose(
                plan.spmm(X), spmm(entry.matrix, X), rtol=1e-9, atol=1e-8,
                err_msg=f"plan SpMM mismatch on {entry.name}",
            )
            Y = rng.normal(size=(entry.matrix.n_rows, 4))
            got = plan.sddmm(X, Y)
            want = sddmm(entry.matrix, X, Y)
            assert got.same_pattern(want), entry.name
            np.testing.assert_allclose(got.values, want.values, rtol=1e-9, atol=1e-8)


class TestReorderingBehaviouralContracts:
    def test_hidden_clusters_beat_nr(self):
        """The motivating scenario must show a real modelled win."""
        m = hidden_clusters(120, 8, 2048, 20, noise=0.05, seed=7)
        cfg = ExperimentConfig(ks=(512,), scale="small", repeats=1)
        device, cost = cfg.effective_model()
        executor = GPUExecutor(device, cost)
        result = autotune(m, 512, executor=executor, config=cfg.reorder)
        assert result.use_reordering
        assert result.speedup > 1.2

    def test_preclustered_is_not_damaged(self):
        """Fig. 7a contract: gates skip, RR == NR exactly."""
        m = preclustered(120, 8, 2048, 20, noise=0.05, seed=7)
        cfg = ExperimentConfig(ks=(512,), scale="small", repeats=1)
        plan = build_plan(m, cfg.reorder)
        assert not plan.stats.round1_applied
        # Either round 2 was skipped too, or it found nothing to change.
        if plan.stats.round2_applied:
            assert plan.stats.delta_avg_sim >= -1e-9

    def test_autotune_never_chooses_slower(self):
        for seed in range(3):
            m = hidden_clusters(60, 6, 1024, 12, noise=0.2, seed=seed)
            result = autotune(m, 512, config=ReorderConfig(siglen=32, panel_height=8))
            chosen = min(result.cost_reordered.time_s, result.cost_plain.time_s)
            actual = (
                result.cost_reordered.time_s
                if result.use_reordering
                else result.cost_plain.time_s
            )
            assert actual == pytest.approx(chosen)


class TestExperimentShapeContracts:
    """The qualitative claims of the paper's evaluation, as assertions."""

    @pytest.fixture(scope="class")
    def records(self):
        cfg = ExperimentConfig(ks=(512,), scale="small", repeats=1)
        return run_experiment(cfg)

    def test_hidden_clusters_show_large_speedups(self, records):
        recs = [r for r in records_at_k(records, 512) if r.category == "hidden"]
        assert recs
        speedups = [r.spmm_rr_speedup_vs_best for r in recs]
        assert max(speedups) > 1.5
        assert min(speedups) > 1.0

    def test_sddmm_speedups_track_spmm(self, records):
        recs = [r for r in records_at_k(records, 512) if r.category == "hidden"]
        for r in recs:
            assert r.sddmm_rr_speedup > 1.0

    def test_diagonal_unchanged(self, records):
        recs = [r for r in records_at_k(records, 512) if r.category == "diagonal"]
        for r in recs:
            assert r.spmm_aspt_rr_s == pytest.approx(r.spmm_aspt_nr_s)

    def test_gated_slowdowns_are_bounded(self, records):
        # Paper Table 1: at most ~1% of gated matrices show slowdown, and
        # none beyond 10%.  Our corpus tolerates slightly more mass but
        # the bound must hold.
        subset = needing_reordering(records_at_k(records, 512))
        worst = min(r.spmm_rr_speedup_vs_best for r in subset)
        assert worst > 0.90

    def test_geomean_in_paper_ballpark(self, records):
        from repro.experiments.tables import summary_stats

        subset = needing_reordering(records_at_k(records, 512))
        stats = summary_stats(subset, "spmm_vs_best")
        # Paper: 1.17x; require the same "modest but real" band.
        assert 1.05 < stats["geomean"] < 1.6
        assert stats["max"] > 1.8


class TestMatrixMarketIntegration:
    def test_reorder_roundtrip_through_files(self, tmp_path, rng):
        m = hidden_clusters(40, 6, 512, 10, seed=3)
        path = tmp_path / "matrix.mtx"
        write_matrix_market(path, m)
        loaded = read_matrix_market(path)
        assert loaded.allclose(m)
        plan = build_plan(loaded, ReorderConfig(siglen=32, panel_height=8))
        X = rng.normal(size=(512, 4))
        np.testing.assert_allclose(plan.spmm(X), spmm(m, X), rtol=1e-9, atol=1e-8)
