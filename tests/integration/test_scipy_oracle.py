"""Cross-validation of the whole numeric stack against scipy.

scipy is banned from the library path (everything is from scratch) but is
the ideal independent oracle: these tests run corpus-class matrices through
our formats, kernels and plans and compare against ``scipy.sparse``
results computed from the same raw data.
"""

import numpy as np
import pytest

sp = pytest.importorskip("scipy.sparse")

from repro.datasets import bipartite_ratings, hidden_clusters, power_law_rows, rmat
from repro.kernels import sddmm, spmm, spmv
from repro.reorder import ReorderConfig, build_plan
from repro.sparse import csr_to_csc, transpose_csr

from conftest import maybe_streamed


def to_scipy(csr):
    return sp.csr_matrix(
        (csr.values, csr.colidx, csr.rowptr), shape=csr.shape
    )


MATRICES = [
    ("hidden", lambda: hidden_clusters(64, 8, 1024, 16, noise=0.1, seed=1)),
    ("rmat", lambda: rmat(9, 8, seed=1)),
    ("powerlaw", lambda: power_law_rows(500, 500, 10, seed=1)),
    ("bipartite", lambda: bipartite_ratings(400, 300, 12, seed=1)),
]


@pytest.mark.parametrize("name,factory", MATRICES, ids=[m[0] for m in MATRICES])
class TestAgainstScipy:
    def test_spmm(self, name, factory, rng, backend_name, streamed):
        m = maybe_streamed(factory(), streamed)
        X = rng.normal(size=(m.n_cols, 16))
        np.testing.assert_allclose(
            spmm(m, X, backend=backend_name),
            to_scipy(m) @ X,
            rtol=1e-10,
            atol=1e-9,
        )

    def test_spmv(self, name, factory, rng, backend_name, streamed):
        m = maybe_streamed(factory(), streamed)
        x = rng.normal(size=m.n_cols)
        np.testing.assert_allclose(
            spmv(m, x, backend=backend_name),
            to_scipy(m) @ x,
            rtol=1e-10,
            atol=1e-9,
        )

    def test_plan_spmm(self, name, factory, rng, streamed):
        m = maybe_streamed(factory(), streamed)
        plan = build_plan(m, ReorderConfig(siglen=32, panel_height=16))
        X = rng.normal(size=(m.n_cols, 8))
        np.testing.assert_allclose(
            plan.spmm(X), to_scipy(m) @ X, rtol=1e-10, atol=1e-8
        )

    def test_sddmm(self, name, factory, rng, backend_name, streamed):
        m = maybe_streamed(factory(), streamed)
        X = rng.normal(size=(m.n_cols, 8))
        Y = rng.normal(size=(m.n_rows, 8))
        got = sddmm(m, X, Y, backend=backend_name)
        s = to_scipy(m)
        # scipy oracle: sample (Y @ X.T) at the stored coordinates.
        dense_vals = np.einsum("pk,pk->p", Y[m.row_ids()], X[m.colidx])
        expected = dense_vals * s.data
        np.testing.assert_allclose(got.values, expected, rtol=1e-10, atol=1e-9)

    def test_transpose(self, name, factory, rng, streamed):
        m = maybe_streamed(factory(), streamed)
        ours = transpose_csr(m)
        theirs = to_scipy(m).T.tocsr()
        theirs.sort_indices()
        np.testing.assert_array_equal(ours.rowptr, theirs.indptr)
        np.testing.assert_array_equal(ours.colidx, theirs.indices)
        np.testing.assert_allclose(ours.values, theirs.data)

    def test_csc(self, name, factory, rng, streamed):
        m = maybe_streamed(factory(), streamed)
        ours = csr_to_csc(m)
        theirs = to_scipy(m).tocsc()
        theirs.sort_indices()
        np.testing.assert_array_equal(ours.colptr, theirs.indptr)
        np.testing.assert_array_equal(ours.rowidx, theirs.indices)
        np.testing.assert_allclose(ours.values, theirs.data)
