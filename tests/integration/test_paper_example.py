"""Integration test: the paper's complete worked example.

Walks the reconstructed Fig. 1a matrix through every stage the paper
narrates — Jaccard scores (§3.2), clustering (Fig. 6), tiling improvement
(Fig. 3 -> Fig. 4), global-memory access counts (13 -> 12 -> 6) — and then
checks the *library's own pipeline* reaches the same quality end-to-end.
"""

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.clustering import cluster_rows
from repro.gpu import paper_example_access_counts
from repro.gpu.executor import GPUExecutor
from repro.gpu.device import P100
from repro.kernels import spmm
from repro.reorder import ReorderConfig, build_plan
from repro.similarity import LSHIndex, jaccard_rows
from repro.sparse import permute_csr_rows


class TestPaperNarrative:
    def test_stage1_jaccard_scores(self, paper_matrix):
        assert jaccard_rows(paper_matrix, 0, 4) == pytest.approx(2 / 3)
        assert jaccard_rows(paper_matrix, 2, 4) == pytest.approx(1 / 4)

    def test_stage2_clustering_reproduces_fig6(self, paper_matrix):
        pairs = np.array([[0, 4], [2, 4]])
        sims = np.array([2 / 3, 1 / 4])
        result = cluster_rows(paper_matrix, pairs, sims)
        assert result.order.tolist() == [0, 2, 4, 1, 3, 5]

    def test_stage3_tiling_improves_2_to_9(self, paper_matrix):
        before = tile_matrix(paper_matrix, 3, 2)
        assert before.nnz_dense == 2
        after = tile_matrix(
            permute_csr_rows(paper_matrix, np.array([0, 4, 2, 3, 1, 5])), 3, 2
        )
        assert after.nnz_dense == 9

    def test_stage4_access_counts_13_12_6(self, paper_matrix):
        counts = paper_example_access_counts(
            paper_matrix,
            panel_height=3,
            rows_per_block=2,
            dense_threshold=2,
            round1_order=np.array([0, 4, 2, 3, 1, 5]),
            round2_order=np.array([1, 4, 2, 5, 0, 3]),
        )
        assert (counts.rowwise, counts.aspt, counts.aspt_reordered) == (13, 12, 6)

    def test_stage5_lsh_pipeline_end_to_end(self, paper_matrix, rng):
        # The library's own LSH + clustering + tiling, forced on (the §4
        # gate would skip this matrix: its dense ratio is 2/13 > 10%).
        config = ReorderConfig(
            siglen=128,
            bsize=2,
            panel_height=3,
            # Cap clusters at the panel height: with the paper's default of
            # 256 a 6-row matrix collapses into one cluster (identity order).
            threshold_size=3,
            force_round1=True,
            force_round2=True,
            lsh_seed=0,
        )
        plan = build_plan(paper_matrix, config)
        # Reordering must capture at least the (0, 4) merge: dense nnz
        # strictly better than the original 2.
        assert plan.tiled.nnz_dense > 2
        # And the plan must still compute the exact product.
        X = rng.normal(size=(6, 7))
        np.testing.assert_allclose(plan.spmm(X), spmm(paper_matrix, X))

    def test_stage6_lsh_finds_the_good_pair(self, paper_matrix):
        pairs, sims = LSHIndex(siglen=128, bsize=2, seed=0).candidate_pairs(
            paper_matrix
        )
        assert [0, 4] in pairs.tolist()

    def test_stage7_reordering_reduces_modelled_time(self, paper_matrix):
        # With a tiny L2 (the 6x6 example has no cache pressure otherwise),
        # the reordered tiling must not be slower.
        executor = GPUExecutor(P100.with_overrides(l2_bytes=4096), cache_mode="exact")
        before = executor.spmm_cost(tile_matrix(paper_matrix, 3, 2), 512, "aspt")
        after = executor.spmm_cost(
            tile_matrix(
                permute_csr_rows(paper_matrix, np.array([0, 4, 2, 3, 1, 5])), 3, 2
            ),
            512,
            "aspt",
        )
        assert after.time_s <= before.time_s
        assert after.total_bytes < before.total_bytes
