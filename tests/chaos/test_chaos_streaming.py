"""Chaos tests for incremental replanning (the ``streaming.update`` site).

Contract: an interrupted :func:`~repro.streaming.apply_delta` must never
leave a torn plan — the caller either gets the complete new plan or keeps
the complete old one.  Under a :class:`~repro.resilience.ResiliencePolicy`
with the ladder enabled, injected faults degrade to a full replan whose
report says so; without one they propagate, and retrying once the fault
clears converges to exactly the from-scratch result.
"""

import numpy as np
import pytest

from repro.datasets import hidden_clusters
from repro.errors import TimeoutExceeded
from repro.reorder import ReorderConfig, build_plan
from repro.resilience import FaultInjector, ResiliencePolicy
from repro.streaming import (
    DeltaBatch,
    LshState,
    StreamingPlan,
    apply_delta,
    split_into_deltas,
)

CFG = ReorderConfig(siglen=16, bsize=4, panel_height=8, force_round1=True)


@pytest.fixture
def matrix():
    return hidden_clusters(24, 8, 512, 8, noise=0.1, seed=5)


@pytest.fixture
def delta(matrix):
    rng = np.random.default_rng(9)
    k = 10
    return DeltaBatch(
        rows=rng.integers(0, matrix.n_rows, size=k),
        cols=rng.integers(0, matrix.n_cols, size=k),
        values=rng.normal(size=k),
    )


def plans_identical(a, b) -> bool:
    return (
        np.array_equal(a.row_order, b.row_order)
        and np.array_equal(a.remainder_order, b.remainder_order)
        and a.stats == b.stats
        and np.array_equal(a.tiled.dense_part.values, b.tiled.dense_part.values)
        and np.array_equal(a.tiled.sparse_part.values, b.tiled.sparse_part.values)
    )


class TestTornPlanSafety:
    def test_interrupted_update_leaves_old_plan_intact(
        self, matrix, delta, chaos_seed
    ):
        """Without a policy the injected fault propagates — and the
        StreamingPlan still serves the *complete* pre-update plan."""
        sp = StreamingPlan(matrix, CFG)
        before = sp.plan
        x = np.random.default_rng(1).normal(size=(matrix.n_cols, 4))
        y_before = before.spmm(x)
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["streaming.update"], max_faults=1
        ):
            with pytest.raises(TimeoutExceeded):
                sp.apply(delta)
        assert sp.plan is before
        assert sp.revision == 0
        assert sp.reports == []
        np.testing.assert_array_equal(sp.plan.spmm(x), y_before)

    def test_resumed_update_converges(self, matrix, delta, chaos_seed):
        """Retrying the same delta after the fault clears produces exactly
        the from-scratch plan for the mutated matrix."""
        sp = StreamingPlan(matrix, CFG)
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["streaming.update"], max_faults=1
        ):
            with pytest.raises(TimeoutExceeded):
                sp.apply(delta)
        report = sp.apply(delta)  # no injector: must succeed
        assert report.patched
        fresh = build_plan(delta.apply_to(matrix), CFG)
        assert plans_identical(sp.plan, fresh)
        assert sp.revision == 1

    def test_input_plan_and_state_never_mutated(self, matrix, delta, chaos_seed):
        plan0 = build_plan(matrix, CFG)
        state0 = LshState.build(matrix, CFG)
        sig0 = state0.signatures.copy()
        order0 = plan0.row_order.copy()
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["streaming.update"], max_faults=1
        ):
            with pytest.raises(TimeoutExceeded):
                apply_delta(plan0, delta, CFG, state=state0)
        np.testing.assert_array_equal(plan0.row_order, order0)
        np.testing.assert_array_equal(state0.signatures, sig0)


class TestDegradedUpdates:
    def test_fault_degrades_to_replan_with_reason(
        self, matrix, delta, chaos_seed
    ):
        """With the ladder enabled the injected fault turns into a full
        replan whose report carries the reason — never an exception."""
        plan0 = build_plan(matrix, CFG)
        state0 = LshState.build(matrix, CFG)
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["streaming.update"], max_faults=1
        ):
            update = apply_delta(
                plan0, delta, CFG, state=state0,
                resilience=ResiliencePolicy(),
            )
        assert update.report.mode == "replanned"
        assert "patch aborted" in update.report.reason
        assert update.report.provenance == update.plan.provenance
        fresh = build_plan(delta.apply_to(matrix), CFG)
        assert plans_identical(update.plan, fresh)

    def test_degraded_plan_triggers_recovery_replan(self, matrix, delta):
        """A plan that settled below the full rung is not patched — the
        next update replans to recover, and says why."""
        policy = ResiliencePolicy(deadline_s=0.0)  # every rung times out
        degraded = build_plan(matrix, CFG, resilience=policy)
        assert degraded.degraded
        update = apply_delta(degraded, delta, CFG, state=None)
        assert update.report.mode == "replanned"
        assert "degraded" in update.report.reason


class TestChaosRate:
    def test_stream_replay_correct_under_sustained_injection(
        self, matrix, chaos_rate, chaos_seed
    ):
        """At the configured chaos rate every update completes (patched or
        degraded-replanned) and the surviving plan is always bitwise-equal
        to a from-scratch build on the same matrix."""
        base, deltas = split_into_deltas(matrix, 6, seed=3, grow_rows=False)
        # max_dirty_fraction=1.0 keeps every update on the patch path (the
        # site under injection); the heuristic path is covered above.
        sp = StreamingPlan(
            base, CFG, resilience=ResiliencePolicy(), max_dirty_fraction=1.0
        )
        x = np.random.default_rng(2).normal(size=(matrix.n_cols, 4))
        with FaultInjector(
            rate=chaos_rate, seed=chaos_seed, sites=["streaming.update"]
        ) as injector:
            for delta in deltas:
                sp.apply(delta)
                fresh = build_plan(sp.matrix, CFG)
                np.testing.assert_array_equal(sp.plan.spmm(x), fresh.spmm(x))
        assert injector.checked["streaming.update"] > 0
        assert sp.revision == len(deltas)
        np.testing.assert_array_equal(sp.matrix.values, matrix.values)
