"""Chaos load tests for ``repro serve``.

Contract (ISSUE tentpole): a multi-tenant server under sustained fault
injection — every registered site, including the serve-layer
``serve.accept`` and ``serve.pool_evict`` sites — must hold four
properties at any injection rate:

* **zero crashes** — the server thread survives the whole run and every
  request eventually gets a response or an explicit connection error;
* **zero wrong answers** — every ``ok`` result is bitwise-identical to a
  fault-free reference built with the *settled* ladder config that the
  response's provenance reports;
* **bounded latency** — client-observed p95 stays under a generous bound
  (no unbounded queueing: overload is rejected, not buffered);
* **monotone degradation provenance** — a response's ladder history only
  ever walks down the ladder, failures first, one final ``ok``.

CI runs this file at two ``(REPRO_CHAOS_RATE, REPRO_CHAOS_SEED)`` points
(see the ``serve-load`` lane); when ``REPRO_SERVE_TRACE_DIR`` is set a
per-request JSONL trace is written there for artifact upload.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.datasets import hidden_clusters
from repro.errors import ReproIOError
from repro.reorder import build_plan
from repro.resilience import FAULT_SITES, FaultInjector
from repro.resilience.policy import LADDER_RUNGS, ladder_rungs
from repro.serve import ServeClient, ServeConfig
from repro.serve.protocol import (
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_OVERLOAD,
    STATUS_REJECTED_QUOTA,
)
from repro.serve.testing import ServerThread


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _write_trace(name, records):
    """Dump per-request records as JSONL when the CI artifact dir is set."""
    trace_dir = os.environ.get("REPRO_SERVE_TRACE_DIR")
    if not trace_dir:
        return
    os.makedirs(trace_dir, exist_ok=True)
    with open(os.path.join(trace_dir, f"{name}.jsonl"), "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


class _ChaosClient:
    """A :class:`ServeClient` that reconnects through injected accept faults.

    ``serve.accept`` drops connections before the first read, so a
    request observing EOF was never processed — resending is safe.
    """

    def __init__(self, address, attempts=60):
        self.address = address
        self.attempts = attempts
        self._client = None

    def request(self, send):
        last = None
        for _ in range(self.attempts):
            try:
                if self._client is None:
                    self._client = ServeClient(self.address, timeout=60.0)
                return send(self._client)
            except ReproIOError as exc:
                last = exc
                self.close()
        raise last

    def close(self):
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None


def _settled_label(provenance):
    """The ladder rung the build actually settled on (last ``: ok``)."""
    settled = [p.split(":", 1)[0] for p in provenance if p.endswith(": ok")]
    return settled[-1] if settled else "full"


def _assert_monotone_provenance(provenance):
    """Failures first, strictly down the ladder, exactly one final ok."""
    labels = [p.split(":", 1)[0] for p in provenance]
    order = [LADDER_RUNGS.index(label) for label in labels]
    assert order == sorted(set(order)), f"non-monotone ladder walk: {provenance}"
    for line in provenance[:-1]:
        assert not line.endswith(": ok"), f"ok before the settle: {provenance}"
    if provenance:
        assert provenance[-1].endswith(": ok"), f"unsettled: {provenance}"


class _ReferenceOracle:
    """Fault-free per-(matrix, settled-config) reference sessions.

    The server keys warm sessions by the *requested* shed rung; the
    build may then settle lower on that rung's own sub-ladder (recorded
    in provenance).  The oracle resolves requested label + provenance to
    the settled :class:`ReorderConfig` and replays the multiply through
    a plan built with no injector active — bitwise equality is the
    wrong-answer detector.
    """

    def __init__(self, config):
        self.config = config
        self._base = ladder_rungs(config.reorder_config())
        self._sessions = {}

    def _settled_config(self, requested_label, provenance):
        requested = dict(self._base).get(requested_label)
        assert requested is not None, f"unknown rung {requested_label!r}"
        sub = dict(ladder_rungs(requested))
        label = _settled_label(provenance)
        assert label in sub, f"settled label {label!r} not on the sub-ladder"
        return sub[label]

    def session(self, fingerprint, matrix, requested_label, provenance):
        settled = self._settled_config(requested_label, provenance)
        key = (fingerprint, repr(settled))
        if key not in self._sessions:
            plan = build_plan(matrix, replace(settled, backend="numpy"))
            self._sessions[key] = plan.session(chunk_k=self.config.chunk_k)
        return self._sessions[key]

    def verify(self, fingerprint, matrix, response, x):
        session = self.session(
            fingerprint, matrix, response["rung"], response.get("provenance", ())
        )
        got = np.asarray(response["result"], dtype=np.float64)
        np.testing.assert_array_equal(got, session.run(x))


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def matrices():
    """Three distinct operators: distinct fingerprints churn the pool."""
    return [
        hidden_clusters(10, 6, 96, 6, noise=0.1, seed=seed)
        for seed in (11, 12, 13)
    ]


# ---------------------------------------------------------------------------
# The main load test: every fault site at the configured chaos rate
# ---------------------------------------------------------------------------


class TestServeLoadUnderChaos:
    THREADS = 5
    REQUESTS = 16

    def test_load_survives_full_fault_matrix(
        self, tmp_path, chaos_rate, chaos_seed, matrices
    ):
        config = ServeConfig(
            port=0,
            workers=2,
            panel_height=8,
            chunk_k=16,
            pool_sessions=2,  # smaller than the key universe: evictions
            pool_shards=1,
            max_inflight=32,
            quota_rate=1000.0,
            quota_burst=1000.0,
            plan_cache_dir=str(tmp_path / "plans"),
        )
        oracle = _ReferenceOracle(config)
        records = []
        errors = []
        lock = threading.Lock()

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ServerThread(config) as thread:
                with ServeClient(thread.address) as client:
                    fingerprints = [
                        client.upload(m)["fingerprint"] for m in matrices
                    ]
                by_fingerprint = dict(zip(fingerprints, matrices))

                barrier = threading.Barrier(self.THREADS)

                def worker(worker_id):
                    rng = np.random.default_rng(10_000 + worker_id)
                    chaos = _ChaosClient(thread.address)
                    barrier.wait()
                    try:
                        for j in range(self.REQUESTS):
                            pick = int(rng.integers(len(matrices)))
                            matrix = matrices[pick]
                            k = int(rng.integers(1, 33))
                            x = rng.normal(size=(matrix.n_cols, k))
                            kwargs = {
                                "tenant": ("alpha", "beta")[j % 2],
                            }
                            if j % 5 == 4:
                                kwargs["matrix"] = matrix  # inline upload path
                            else:
                                kwargs["fingerprint"] = fingerprints[pick]
                            if j % 6 == 5:
                                kwargs["deadline_s"] = 0.002  # cancellation path
                            elif j % 6 == 2:
                                kwargs["deadline_s"] = 30.0
                            t0 = time.monotonic()
                            response = chaos.request(
                                lambda c: c.spmm(x, **kwargs)
                            )
                            latency = time.monotonic() - t0
                            with lock:
                                records.append(
                                    {
                                        "worker": worker_id,
                                        "seq": j,
                                        "fingerprint": fingerprints[pick],
                                        "x": x,
                                        "response": response,
                                        "latency_s": latency,
                                    }
                                )
                    except Exception as exc:  # pragma: no cover - reporting
                        errors.append(f"worker {worker_id}: {exc!r}")
                    finally:
                        chaos.close()

                with FaultInjector(
                    rate=chaos_rate, seed=chaos_seed, sites=list(FAULT_SITES)
                ) as injector:
                    threads = [
                        threading.Thread(target=worker, args=(i,))
                        for i in range(self.THREADS)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()

                # Injector gone: the server must still be fully healthy.
                with ServeClient(thread.address) as client:
                    health = client.health()
                    metrics = client.metrics()["metrics"]
                assert health["ready"] is True
                assert health["draining"] is False

        _write_trace(
            f"serve_load_rate{chaos_rate}_seed{chaos_seed}",
            [
                {
                    key: value
                    for key, value in r.items()
                    if key not in ("x", "response")
                }
                | {
                    "status": r["response"].get("status"),
                    "rung": r["response"].get("rung"),
                }
                for r in records
            ],
        )

        # Zero crashes: every request resolved, the thread wound down.
        assert errors == []
        assert len(records) == self.THREADS * self.REQUESTS
        assert not thread._thread.is_alive()

        statuses = {}
        for record in records:
            status = record["response"].get("status")
            statuses[status] = statuses.get(status, 0) + 1
        allowed = {
            STATUS_OK,
            STATUS_DEADLINE_EXCEEDED,
            STATUS_REJECTED_OVERLOAD,
            STATUS_REJECTED_QUOTA,
            STATUS_ERROR,
        }
        assert set(statuses) <= allowed, f"unexpected statuses: {statuses}"
        # Progress under chaos: the healthy majority really was served.
        assert statuses.get(STATUS_OK, 0) > len(records) // 2, statuses

        # Zero wrong answers + monotone provenance, response by response.
        for record in records:
            response = record["response"]
            if response.get("status") != STATUS_OK:
                assert "result" not in response
                continue
            _assert_monotone_provenance(response.get("provenance", []))
            oracle.verify(
                record["fingerprint"],
                by_fingerprint[record["fingerprint"]],
                response,
                record["x"],
            )

        # Bounded p95: overload rejects instead of queueing without bound.
        latencies = sorted(r["latency_s"] for r in records)
        p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
        assert p95 < 10.0, f"p95 latency {p95:.3f}s"
        assert metrics["serve.requests"] >= len(records)
        assert metrics["serve.latency_s"]["count"] >= statuses.get(STATUS_OK, 0)


# ---------------------------------------------------------------------------
# Targeted robustness scenarios (fault-free or single-site injection)
# ---------------------------------------------------------------------------


class TestAdmissionUnderLoad:
    def test_overload_is_rejected_not_queued(self, matrices):
        matrix = matrices[0]
        config = ServeConfig(
            port=0,
            workers=1,
            max_inflight=1,
            panel_height=8,
            chunk_k=16,
            quota_rate=100_000.0,
            quota_burst=100_000.0,
        )
        statuses = []
        ok_checks = []
        lock = threading.Lock()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ServerThread(config) as thread:
                with ServeClient(thread.address) as client:
                    fingerprint = client.upload(matrix)["fingerprint"]
                reference = build_plan(
                    matrix, config.reorder_config()
                ).session(chunk_k=config.chunk_k)

                barrier = threading.Barrier(6)

                def worker(worker_id):
                    rng = np.random.default_rng(worker_id)
                    with ServeClient(thread.address) as client:
                        barrier.wait()
                        for _ in range(10):
                            x = rng.normal(size=(matrix.n_cols, 48))
                            response = client.spmm(x, fingerprint=fingerprint)
                            with lock:
                                statuses.append(response["status"])
                                if response["status"] == STATUS_OK:
                                    ok_checks.append((x, response))

                threads = [
                    threading.Thread(target=worker, args=(i,)) for i in range(6)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()

                # An uncontended request still succeeds afterwards.
                with ServeClient(thread.address) as client:
                    x = np.ones((matrix.n_cols, 4))
                    final = client.spmm(x, fingerprint=fingerprint)
                assert final["status"] == STATUS_OK

        assert set(statuses) <= {STATUS_OK, STATUS_REJECTED_OVERLOAD}
        # Six workers racing a single admission slot must overflow it.
        assert statuses.count(STATUS_REJECTED_OVERLOAD) > 0
        assert statuses.count(STATUS_OK) > 0
        for x, response in ok_checks:
            np.testing.assert_array_equal(
                np.asarray(response["result"], dtype=np.float64),
                reference.run(x),
            )

    def test_tenant_quota_rejections_are_deterministic(self, matrices):
        matrix = matrices[0]
        config = ServeConfig(
            port=0,
            workers=1,
            panel_height=8,
            chunk_k=16,
            tenant_quotas={"limited": (0.001, 2.0)},
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ServerThread(config) as thread:
                with ServeClient(thread.address) as client:
                    fingerprint = client.upload(matrix)["fingerprint"]
                    x = np.ones((matrix.n_cols, 3))
                    limited = [
                        client.spmm(x, fingerprint=fingerprint, tenant="limited")[
                            "status"
                        ]
                        for _ in range(5)
                    ]
                    unlimited = client.spmm(
                        x, fingerprint=fingerprint, tenant="other"
                    )["status"]
        # Burst of 2 with negligible refill: exactly two sneak through.
        assert limited == [
            STATUS_OK,
            STATUS_OK,
            STATUS_REJECTED_QUOTA,
            STATUS_REJECTED_QUOTA,
            STATUS_REJECTED_QUOTA,
        ]
        assert unlimited == STATUS_OK  # isolation: other tenants unaffected


class TestBreakerUnderCompileFaults:
    def test_breaker_trips_to_numpy_and_stops_compiling(self, matrices):
        config = ServeConfig(
            port=0,
            workers=1,
            panel_height=8,
            chunk_k=16,
            backend="codegen",
            breaker_threshold=2,
            breaker_reset_s=600.0,  # stays open for the whole test
        )
        numpy_config = replace(config.reorder_config(), backend="numpy")
        operators = [
            hidden_clusters(8, 6, 96, 6, noise=0.1, seed=100 + i)
            for i in range(5)
        ]
        responses = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ServerThread(config) as thread:
                with FaultInjector(
                    rate=1.0, seed=1, sites=["backend.compile"]
                ) as injector:
                    with ServeClient(thread.address) as client:
                        for i, operator in enumerate(operators):
                            x = np.full((operator.n_cols, 5), float(i + 1))
                            responses.append(
                                (operator, x, client.spmm(x, matrix=operator))
                            )
                        health = client.health()
                # Two failed compiles trip the breaker; the three builds
                # after it never reach the compiler at all.
                assert injector.checked["backend.compile"] == 2
                assert injector.fired["backend.compile"] == 2
        assert health["breaker"]["state"] == "open"
        for operator, x, response in responses:
            assert response["status"] == STATUS_OK
            assert response["backend"] == "numpy"  # degraded, not failed
            reference = build_plan(operator, numpy_config).session(
                chunk_k=config.chunk_k
            )
            np.testing.assert_array_equal(
                np.asarray(response["result"], dtype=np.float64),
                reference.run(x),
            )


class TestCoalescingUnderConcurrency:
    def test_coalesced_burst_is_bitwise_identical(self, matrices):
        matrix = matrices[0]
        config = ServeConfig(
            port=0,
            workers=1,
            max_inflight=64,
            panel_height=8,
            chunk_k=16,
            quota_rate=100_000.0,
            quota_burst=100_000.0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ServerThread(config) as thread:
                with ServeClient(thread.address) as client:
                    fingerprint = client.upload(matrix)["fingerprint"]
                    # Warm the full-rung session so the burst multiplies
                    # immediately (coalescing happens at the executor door).
                    client.spmm(
                        np.ones((matrix.n_cols, 2)), fingerprint=fingerprint
                    )
                reference = build_plan(
                    matrix, config.reorder_config()
                ).session(chunk_k=config.chunk_k)

                coalesced_seen = False
                for _attempt in range(3):
                    responses = [None] * 12
                    barrier = threading.Barrier(len(responses))

                    def worker(i):
                        rng = np.random.default_rng(500 + i)
                        x = rng.normal(size=(matrix.n_cols, 8))
                        with ServeClient(thread.address) as client:
                            barrier.wait()
                            responses[i] = (x, client.spmm(x, fingerprint=fingerprint))

                    threads = [
                        threading.Thread(target=worker, args=(i,))
                        for i in range(len(responses))
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()

                    for x, response in responses:
                        assert response["status"] == STATUS_OK
                        np.testing.assert_array_equal(
                            np.asarray(response["result"], dtype=np.float64),
                            reference.run(x),
                        )
                    if any(r["coalesced"] for _, r in responses):
                        coalesced_seen = True
                        break
                with ServeClient(thread.address) as client:
                    metrics = client.metrics()["metrics"]
        assert coalesced_seen, "12-wide simultaneous burst never coalesced"
        assert metrics["serve.coalesced"] >= 1
        assert metrics["serve.batches"] >= 1


class TestGracefulDrainUnderLoad:
    def test_drain_finishes_in_flight_and_rejects_late_arrivals(self, matrices):
        matrix = matrices[0]
        config = ServeConfig(
            port=0,
            workers=2,
            max_inflight=16,
            panel_height=8,
            chunk_k=16,
            quota_rate=100_000.0,
            quota_burst=100_000.0,
        )
        results = []
        lock = threading.Lock()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ServerThread(config) as thread:
                with ServeClient(thread.address) as client:
                    fingerprint = client.upload(matrix)["fingerprint"]
                reference = build_plan(
                    matrix, config.reorder_config()
                ).session(chunk_k=config.chunk_k)
                stop_at = time.monotonic() + 8.0

                def worker(worker_id):
                    rng = np.random.default_rng(worker_id)
                    try:
                        client = ServeClient(thread.address)
                        while time.monotonic() < stop_at:
                            x = rng.normal(size=(matrix.n_cols, 16))
                            response = client.spmm(x, fingerprint=fingerprint)
                            with lock:
                                results.append((x, response))
                            if response["status"] == STATUS_DRAINING:
                                return
                    except ReproIOError:
                        return  # connection closed by the drain: acceptable

                threads = [
                    threading.Thread(target=worker, args=(i,)) for i in range(4)
                ]
                for t in threads:
                    t.start()
                time.sleep(0.3)  # let load build up, then pull the plug
                with ServeClient(thread.address) as client:
                    drained = client.drain()
                assert drained["status"] == STATUS_OK
                for t in threads:
                    t.join(timeout=15.0)
                assert not any(t.is_alive() for t in threads)

        # The thread wound all the way down within the drain timeout.
        assert not thread._thread.is_alive()
        assert len(results) > 0
        for x, response in results:
            if response["status"] == STATUS_OK:
                np.testing.assert_array_equal(
                    np.asarray(response["result"], dtype=np.float64),
                    reference.run(x),
                )
            else:
                # In-flight work finishes; late arrivals are told why.
                assert response["status"] == STATUS_DRAINING

    def test_sigterm_drains_a_real_server_process(self, tmp_path, matrices):
        """`repro serve` + SIGTERM: the real CLI path drains and exits 0."""
        matrix = matrices[0]
        socket_path = str(tmp_path / "serve.sock")
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--unix-socket",
                socket_path,
                "--workers",
                "1",
                "--panel-height",
                "8",
                "--drain-timeout",
                "10",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 20.0
            while not os.path.exists(socket_path):
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.monotonic() < deadline, "server never bound its socket"
                time.sleep(0.05)
            with ServeClient(socket_path) as client:
                assert client.ping()["status"] == STATUS_OK
                response = client.spmm(
                    np.ones((matrix.n_cols, 4)), matrix=matrix
                )
                assert response["status"] == STATUS_OK
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 0
            # The drain unlinked the UNIX socket on its way out.
            assert not os.path.exists(socket_path)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
