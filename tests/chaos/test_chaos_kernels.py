"""Chaos tests for kernel sessions under workspace-pool exhaustion.

Contract (ISSUE satellite): when the pool cannot serve a lease — a real
``max_lease_bytes`` cap hit mid-multiply or an injected fault — the
session completes through direct allocation and the result is
**bitwise-identical** to the pooled path.
"""

import warnings

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.datasets import hidden_clusters
from repro.errors import DegradedExecution, WorkspaceExhausted
from repro.kernels import KernelSession, spmm
from repro.reorder import ReorderConfig, build_plan
from repro.resilience import FaultInjector
from repro.util.workspace import WorkspacePool


@pytest.fixture
def matrix():
    return hidden_clusters(12, 6, 128, 6, noise=0.1, seed=3)


@pytest.fixture
def X(matrix, rng):
    return rng.normal(size=(matrix.n_cols, 32))


class TestLeaseCapFallback:
    def test_cap_hit_mid_multiply_falls_back_bitwise_identical(self, matrix, X):
        reference = spmm(matrix, X)
        # Large enough for small leases, too small for the big transposed
        # staging buffer — the cap fires mid-multiply, not at lease time.
        session = KernelSession(matrix, pool=WorkspacePool(max_lease_bytes=1024))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = session.run(X)
            np.testing.assert_array_equal(got, reference)
            assert session.fallbacks == 1
            # Warn once per session, not per call.
            session.run(X)
            assert session.fallbacks == 2
        degraded = [w for w in caught if w.category is DegradedExecution]
        assert len(degraded) == 1

    def test_cap_raises_without_session_wrapper(self):
        pool = WorkspacePool(max_lease_bytes=64)
        with pool.lease() as ws:
            with pytest.raises(WorkspaceExhausted, match="max_lease_bytes"):
                ws.scratch((64, 64))

    def test_plan_session_fallback_matches_plan_spmm(self, matrix, X):
        plan = build_plan(matrix, ReorderConfig(siglen=32, panel_height=8))
        reference = plan.spmm(X)
        session = KernelSession(plan, pool=WorkspacePool(max_lease_bytes=2048))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecution)
            got = session.run(X)
        np.testing.assert_array_equal(got, reference)
        assert session.fallbacks == 1

    def test_tiled_session_fallback_matches_reference(self, matrix, X):
        tiled = tile_matrix(matrix, panel_height=8)
        pooled = KernelSession(tiled).run(X).copy()
        capped = KernelSession(tiled, pool=WorkspacePool(max_lease_bytes=2048))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecution)
            got = capped.run(X)
        np.testing.assert_array_equal(got, pooled)


class TestInjectedExhaustion:
    def test_injected_session_fault_falls_back_once(self, matrix, X, chaos_seed):
        reference = spmm(matrix, X)
        session = KernelSession(matrix)
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["session.run"], max_faults=1
        ):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedExecution)
                got = session.run(X)
        np.testing.assert_array_equal(got, reference)
        assert session.fallbacks == 1
        # After the injector window the pooled path serves again.
        np.testing.assert_array_equal(session.run(X), reference)
        assert session.fallbacks == 1

    def test_injected_take_fault_falls_back(self, matrix, X, chaos_seed):
        reference = spmm(matrix, X)
        session = KernelSession(matrix)
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["workspace.take"], max_faults=1
        ):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedExecution)
                got = session.run(X)
        np.testing.assert_array_equal(got, reference)
        assert session.fallbacks == 1


class TestChaosRate:
    def test_sustained_injection_never_changes_results(
        self, matrix, X, chaos_rate, chaos_seed
    ):
        reference = spmm(matrix, X)
        session = KernelSession(matrix)
        with FaultInjector(
            rate=chaos_rate,
            seed=chaos_seed,
            sites=["session.run", "workspace.take"],
        ) as injector:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedExecution)
                for _ in range(25):
                    np.testing.assert_array_equal(session.run(X), reference)
        assert injector.checked["session.run"] == 25
        assert session.fallbacks == sum(injector.fired.values())
