"""Chaos tests for the plan store's disk tier.

Contract: injected read/write faults must degrade to misses (with
quarantine where a file looks damaged), never crash, never serve a wrong
plan — and healthy entries quarantined by a *transient* failure must be
restorable because their checksums still verify.
"""

import logging

import numpy as np
import pytest

from repro.datasets import hidden_clusters
from repro.planstore import DiskPlanStore, PlanDecisions, PlanStore
from repro.reorder import ReorderConfig, build_plan
from repro.resilience import FaultInjector

CFG = ReorderConfig(siglen=32, panel_height=8)
KEY = "0123456789abcdef0123456789abcdef"


@pytest.fixture
def matrix():
    return hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)


@pytest.fixture
def decisions(matrix):
    return PlanDecisions.from_plan(build_plan(matrix, CFG))


class TestInjectedReadFaults:
    def test_injected_fault_quarantines_then_heal_restores(
        self, tmp_path, decisions, chaos_seed
    ):
        """A healthy entry hit by an injected read fault is quarantined;
        `heal` re-validates its checksum and puts it back."""
        store = DiskPlanStore(tmp_path)
        store.put(KEY, decisions)
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["planstore.read"], max_faults=1
        ):
            assert store.get(KEY) is None
        assert not store.path_for(KEY).exists()
        assert len(store.quarantined()) == 1

        healed = store.heal()
        assert len(healed["restored"]) == 1
        got = store.get(KEY)
        np.testing.assert_array_equal(got.row_order, decisions.row_order)

    def test_injected_write_fault_skips_caching_not_crash(
        self, tmp_path, decisions, chaos_seed, caplog
    ):
        store = DiskPlanStore(tmp_path)
        with FaultInjector(rate=1.0, seed=chaos_seed, sites=["planstore.write"]):
            with caplog.at_level(logging.WARNING, logger="repro.planstore"):
                store.put(KEY, decisions)  # must not raise
        assert store.get(KEY) is None  # nothing cached
        assert not list(tmp_path.glob("*.tmp"))  # no temp litter
        # The store works again once the fault clears.
        store.put(KEY, decisions)
        assert store.get(KEY) is not None

    def test_lru_tier_not_poisoned_by_disk_faults(self, tmp_path, matrix, chaos_seed):
        """After an injected disk failure the rebuild lands in the memory
        tier; later hits are served from memory with identical orders."""
        cold = build_plan(matrix, CFG, cache=PlanStore(cache_dir=tmp_path))

        store = PlanStore(cache_dir=tmp_path)  # fresh (empty) memory tier
        with FaultInjector(
            rate=1.0, seed=chaos_seed, sites=["planstore.read"], max_faults=1
        ):
            rebuilt = build_plan(matrix, CFG, cache=store)
        np.testing.assert_array_equal(rebuilt.row_order, cold.row_order)

        # No injector now: the hit must come from the healthy memory tier.
        hit = build_plan(matrix, CFG, cache=store)
        np.testing.assert_array_equal(hit.row_order, cold.row_order)
        assert store.stats()["memory"]["hits"] >= 1


class TestChaosRate:
    def test_store_never_crashes_under_sustained_injection(
        self, tmp_path, matrix, decisions, chaos_rate, chaos_seed
    ):
        """At the configured chaos rate, every get/put either succeeds or
        degrades; results that do come back are bitwise-correct."""
        store = DiskPlanStore(tmp_path)
        with FaultInjector(
            rate=chaos_rate,
            seed=chaos_seed,
            sites=["planstore.read", "planstore.write"],
        ) as injector:
            for _ in range(40):
                store.put(KEY, decisions)
                got = store.get(KEY)
                if got is not None:
                    np.testing.assert_array_equal(
                        got.row_order, decisions.row_order
                    )
                else:
                    store.heal()  # restore any healthy quarantined file
        assert injector.checked["planstore.read"] > 0
        assert injector.checked["planstore.write"] > 0
        # The store is fully functional after the chaos window.
        store.heal()
        store.put(KEY, decisions)
        assert store.get(KEY) is not None
