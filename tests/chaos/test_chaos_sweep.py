"""The chaos acceptance sweep plus crash/resume protocol tests.

ISSUE acceptance criterion: with the fault injector enabled at the
configured rate and a fixed seed, a ``run_experiment`` sweep over the
synthetic corpus completes with **zero crashes**, every degraded plan's
ladder step is recorded in provenance, and all emitted results are
bitwise-equal to a fault-free reference for matrices that needed no
degradation.
"""

import warnings

import pytest

import repro.experiments.runner as runner_module
from repro.errors import ConfigError, DegradedExecution
from repro.experiments import ExperimentConfig, run_experiment
from repro.resilience import FaultInjector, ResiliencePolicy, journal_status

#: Fields legitimately differing between two runs of the same sweep.
_NONDETERMINISTIC_FIELDS = ("preprocess_s", "stage_seconds")

#: The injection sites a model-based sweep actually traverses (kernel and
#: io sites have their own chaos modules).
SWEEP_SITES = (
    "clustering.minhash",
    "clustering.cluster",
    "planstore.read",
    "planstore.write",
)


def _comparable(record, *, drop_degradation=False):
    d = record.as_dict()
    for field in _NONDETERMINISTIC_FIELDS:
        d.pop(field)
    if drop_degradation:
        d.pop("degradation")
    return d


def _config(**overrides):
    kwargs = {"scale": "tiny", "repeats": 1, "ks": (64,), **overrides}
    return ExperimentConfig(**kwargs)


class TestChaosAcceptance:
    def test_sweep_completes_degrades_honestly_and_stays_bitwise_correct(
        self, tmp_path, chaos_rate, chaos_seed
    ):
        reference = run_experiment(_config())

        chaos_config = _config(
            resilience=ResiliencePolicy(),
            plan_cache_dir=str(tmp_path / "cache"),
        )
        with FaultInjector(
            rate=chaos_rate, seed=chaos_seed, sites=list(SWEEP_SITES)
        ) as injector:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedExecution)
                records = run_experiment(chaos_config)  # zero crashes

        assert len(records) == len(reference)
        degraded = [r for r in records if r.degradation]
        clean = [r for r in records if not r.degradation]
        by_key = {(r.name, r.k): r for r in reference}

        # Non-degraded results are bitwise-equal to the fault-free run.
        for record in clean:
            ref = by_key[(record.name, record.k)]
            assert _comparable(record) == _comparable(ref)

        # Degraded results carry their ladder history: the failed rung(s)
        # with the exception, and the rung that finally succeeded.
        for record in degraded:
            assert "injected fault" in record.degradation
            assert ": ok" in record.degradation

        # The injector actually exercised the sweep's sites (vacuous runs
        # prove nothing).  Clustering sites only arm when a reordering
        # round runs, which every corpus scale guarantees for some matrix.
        assert sum(injector.checked.values()) > 0
        if chaos_rate > 0 and sum(injector.fired.values()) == 0:
            pytest.skip("no fault fired at this (rate, seed); nothing to verify")
        if chaos_rate > 0.05:
            assert degraded or injector.fired.keys() <= {
                "planstore.read", "planstore.write",
            }


class TestResumeProtocol:
    def test_resume_recomputes_only_remaining_matrices(
        self, tmp_path, monkeypatch
    ):
        config = _config()
        checkpoint = tmp_path / "sweep.journal"
        straight = run_experiment(config)

        real = runner_module.run_single_matrix
        calls = {"n": 0}

        def interrupt_after_four(entry, cfg, executor, plan_cache=None):
            calls["n"] += 1
            if calls["n"] == 5:
                raise KeyboardInterrupt
            return real(entry, cfg, executor, plan_cache=plan_cache)

        monkeypatch.setattr(runner_module, "run_single_matrix", interrupt_after_four)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(config, checkpoint=checkpoint)

        status = journal_status(checkpoint)
        assert status["valid"] and status["interrupted"]
        assert len(status["completed"]) == 4

        # Resume: the spy proves only the remaining matrices recompute.
        resumed_calls = {"n": 0}

        def counting(entry, cfg, executor, plan_cache=None):
            resumed_calls["n"] += 1
            return real(entry, cfg, executor, plan_cache=plan_cache)

        monkeypatch.setattr(runner_module, "run_single_matrix", counting)
        resumed = run_experiment(config, checkpoint=checkpoint, resume=True)

        total = len({r.name for r in straight})
        assert resumed_calls["n"] == total - 4
        assert [_comparable(r) for r in resumed] == [
            _comparable(r) for r in straight
        ]
        assert journal_status(checkpoint)["complete"]

    def test_resume_under_other_config_is_refused(self, tmp_path):
        checkpoint = tmp_path / "sweep.journal"
        run_experiment(_config(), checkpoint=checkpoint)
        with pytest.raises(ConfigError, match="different"):
            run_experiment(_config(ks=(128,)), checkpoint=checkpoint, resume=True)

    def test_parallel_resume_matches_sequential(self, tmp_path, monkeypatch):
        config = _config()
        checkpoint = tmp_path / "sweep.journal"
        straight = run_experiment(config)

        real = runner_module.run_single_matrix
        calls = {"n": 0}

        def interrupt_after_two(entry, cfg, executor, plan_cache=None):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real(entry, cfg, executor, plan_cache=plan_cache)

        monkeypatch.setattr(runner_module, "run_single_matrix", interrupt_after_two)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(config, checkpoint=checkpoint)
        monkeypatch.setattr(runner_module, "run_single_matrix", real)

        # Resume with a worker pool: journalled chunks replay, the rest
        # fan out, and the record set still matches corpus order.
        resumed = run_experiment(
            config, checkpoint=checkpoint, resume=True, n_jobs=2
        )
        assert [_comparable(r) for r in resumed] == [
            _comparable(r) for r in straight
        ]

    def test_interrupt_flushes_before_propagating(self, tmp_path, monkeypatch):
        config = _config()
        checkpoint = tmp_path / "sweep.journal"
        real = runner_module.run_single_matrix

        def interrupt_immediately(entry, cfg, executor, plan_cache=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            runner_module, "run_single_matrix", interrupt_immediately
        )
        with pytest.raises(KeyboardInterrupt):
            run_experiment(config, checkpoint=checkpoint)
        # Even a first-matrix Ctrl-C leaves a valid, resumable journal.
        status = journal_status(checkpoint)
        assert status["valid"] and status["interrupted"]
        assert status["completed"] == []

        monkeypatch.setattr(runner_module, "run_single_matrix", real)
        resumed = run_experiment(config, checkpoint=checkpoint, resume=True)
        assert len(resumed) == len(run_experiment(config))
