"""Chaos tests for the ``backend.compile`` fault site.

Contract (ISSUE satellite): an injected compile failure must never
crash — sessions and plan builds degrade to the numpy reference, the
``resilience.fault_fired`` and ``kernels.backend_fallback`` counters
record the event, the degradation lands in ``backend_provenance`` (never
in the plan's resilience provenance), and results stay correct.  A
resumable sweep configured with a compiled backend completes with zero
crashes at any injection rate.
"""

import warnings

import numpy as np
import pytest

from conftest import random_csr
from repro.errors import DegradedExecution
from repro.experiments import ExperimentConfig, run_experiment
from repro.kernels import KernelSession, spmm
from repro.kernels.backends import SpecializationSpec, get_backend
from repro.observability.metrics import METRICS
from repro.reorder import ReorderConfig, build_plan
from repro.resilience import FaultInjector


def _fresh_spec(seed: int, **overrides) -> dict:
    """Config kwargs whose spec fingerprint misses the artifact cache.

    The artifact cache is process-global and ``backend.compile`` faults
    fire only on cache misses (warm artifacts intentionally skip the
    fault point), so every chaos scenario needs an unseen spec — an
    unusual ``chunk_k`` guarantees that.
    """
    return {"chunk_k": 97 + seed, **overrides}


class TestCompileFaultDegradation:
    def test_session_compile_fault_falls_back_to_numpy(self, rng):
        matrix = random_csr(rng, 24, 20, density=0.2)
        X = rng.normal(size=(20, 8))
        reference = spmm(matrix, X)
        fallback = METRICS.counter("kernels.backend_fallback")
        fired = METRICS.counter("resilience.fault_fired")
        before_fallback, before_fired = fallback.value, fired.value

        with FaultInjector(rate=1.0, seed=7, sites=["backend.compile"]):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                session = KernelSession(
                    matrix, backend="codegen", **_fresh_spec(0)
                )
                got = session.run(X)

        assert session.backend == "numpy"
        assert session.backend_provenance
        assert "injected fault" in session.backend_provenance[0]
        assert fallback.value == before_fallback + 1
        assert fired.value == before_fired + 1
        assert any(w.category is DegradedExecution for w in caught)
        np.testing.assert_array_equal(got, reference)

    def test_plan_build_compile_fault_degrades_backend_only(self, rng):
        matrix = random_csr(rng, 30, 24, density=0.15)
        # panel_height=5 is used nowhere else with codegen, so the spec
        # fingerprint misses the process-global artifact cache and the
        # injected compile fault is guaranteed an arrival.
        config = ReorderConfig(siglen=16, panel_height=5, backend="codegen")
        with FaultInjector(rate=1.0, seed=11, sites=["backend.compile"]):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedExecution)
                plan = build_plan(matrix, config)
        assert plan.backend == "numpy"
        assert plan.backend_degraded
        assert any("injected fault" in step for step in plan.backend_provenance)
        # The resilience ladder is untouched: a backend fault is not a
        # pipeline degradation and must not block plan caching.
        assert not plan.degraded
        # The degraded plan still multiplies correctly (tiled execution
        # reorders the summation, so tolerance rather than bitwise).
        X = rng.normal(size=(24, 8))
        np.testing.assert_allclose(
            plan.spmm(X), spmm(matrix, X), rtol=1e-10, atol=1e-12
        )

    def test_warm_artifacts_bypass_faults(self, rng):
        backend = get_backend("codegen")
        spec = SpecializationSpec(kernel="spmm", chunk_k=89, k_hint=777)
        cold = backend.artifact(spec)  # fills the process-global cache
        with FaultInjector(rate=1.0, seed=3, sites=["backend.compile"]) as inj:
            warm = backend.artifact(spec)
        assert warm is cold
        assert inj.fired["backend.compile"] == 0  # cache hit: no fault arrival


class TestChaosSweepWithBackend:
    def test_backend_sweep_zero_crashes(self, tmp_path, chaos_rate, chaos_seed):
        reorder = ReorderConfig(panel_height=8, backend="codegen")
        config = ExperimentConfig(
            scale="tiny", repeats=1, ks=(16,),
            reorder=reorder,
            plan_cache_dir=str(tmp_path / "cache"),
        )
        reference = run_experiment(
            ExperimentConfig(
                scale="tiny", repeats=1, ks=(16,),
                reorder=ReorderConfig(panel_height=8),
            )
        )
        with FaultInjector(
            rate=chaos_rate, seed=chaos_seed, sites=["backend.compile"]
        ):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedExecution)
                records = run_experiment(config)  # zero crashes
        assert len(records) == len(reference)
        # Backend faults never surface as resilience degradation — every
        # record's ladder field stays empty (compile failures degrade the
        # backend, not the plan).
        assert all(not r.degradation for r in records)
