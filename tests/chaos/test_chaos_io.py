"""Chaos tests for MatrixMarket reads.

Contract (ISSUE bugfix): failures reading a *path* surface as
:class:`ReproIOError`/:class:`FormatError` with the path in the message —
never a raw ``OSError``/``UnicodeDecodeError`` traceback — and map to the
structured CLI exit codes.
"""

import numpy as np
import pytest

from repro.errors import (
    EXIT_DATA,
    EXIT_IO,
    FormatError,
    ReproIOError,
    exit_code_for,
)
from repro.resilience import FaultInjector, retry_io
from repro.sparse import read_matrix_market, write_matrix_market

MTX = (
    "%%MatrixMarket matrix coordinate real general\n"
    "3 3 3\n"
    "1 1 1.5\n"
    "2 2 2.5\n"
    "3 1 -1.0\n"
)


@pytest.fixture
def mtx_path(tmp_path):
    path = tmp_path / "ok.mtx"
    path.write_text(MTX)
    return path


class TestErrorSurface:
    def test_missing_file_maps_to_repro_io_error_with_path(self, tmp_path):
        path = tmp_path / "absent.mtx"
        with pytest.raises(ReproIOError, match="absent.mtx"):
            read_matrix_market(path)
        assert exit_code_for(ReproIOError("x")) == EXIT_IO

    def test_directory_path_maps_to_repro_io_error(self, tmp_path):
        with pytest.raises(ReproIOError, match=str(tmp_path)):
            read_matrix_market(tmp_path)

    def test_binary_bytes_map_to_format_error_with_path(self, tmp_path):
        path = tmp_path / "binary.mtx"
        path.write_bytes(b"\x80\x81\x82\xff not text")
        with pytest.raises(FormatError, match="binary.mtx"):
            read_matrix_market(path)
        assert exit_code_for(FormatError("x")) == EXIT_DATA

    def test_no_raw_oserror_escapes(self, tmp_path):
        try:
            read_matrix_market(tmp_path / "absent.mtx")
        except ReproIOError:
            pass  # the contract: the subtype, not a bare OSError
        else:  # pragma: no cover - the read must fail
            pytest.fail("expected ReproIOError")


class TestInjectedReadFaults:
    def test_injected_fault_surfaces_as_repro_io_error(self, mtx_path, chaos_seed):
        with FaultInjector(rate=1.0, seed=chaos_seed, sites=["io.read"]):
            with pytest.raises(ReproIOError, match="injected fault"):
                read_matrix_market(mtx_path)

    def test_file_objects_bypass_the_injection_site(self, mtx_path, chaos_seed):
        """The io.read site guards *path* opens; handed an open stream,
        the parser has no IO of its own to fail."""
        with FaultInjector(rate=1.0, seed=chaos_seed, sites=["io.read"]):
            with open(mtx_path, encoding="utf-8") as fh:
                csr = read_matrix_market(fh)
        assert csr.nnz == 3

    def test_chaos_rate_reads_fail_clean_or_return_correct(
        self, mtx_path, chaos_rate, chaos_seed
    ):
        reference = read_matrix_market(mtx_path)
        failures = 0
        with FaultInjector(rate=chaos_rate, seed=chaos_seed, sites=["io.read"]):
            for _ in range(50):
                try:
                    got = read_matrix_market(mtx_path)
                except ReproIOError:
                    failures += 1
                    continue
                np.testing.assert_array_equal(got.rowptr, reference.rowptr)
                np.testing.assert_array_equal(got.colidx, reference.colidx)
                np.testing.assert_array_equal(got.values, reference.values)
        # Nothing but the characteristic error ever escaped; at the
        # default 10% rate the binomial P(0 fires in 50) is ~0.005, but a
        # 0-rate run (chaos off) must also pass.
        assert failures <= 50


class TestRetryAroundReads:
    def test_transient_oserror_is_retried_to_success(self, mtx_path):
        """The production read path wires retry_io around the open; prove
        the same wrapper turns flaky opens into successful reads."""
        calls = {"n": 0}

        def flaky_read():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient EIO")
            return read_matrix_market(mtx_path)

        csr = retry_io(flaky_read, attempts=3, backoff_s=0.0, sleep=lambda _: None)
        assert csr.nnz == 3
        assert calls["n"] == 3

    def test_roundtrip_survives_write_then_read(self, tmp_path, mtx_path):
        csr = read_matrix_market(mtx_path)
        out = tmp_path / "roundtrip.mtx"
        write_matrix_market(out, csr)
        again = read_matrix_market(out)
        np.testing.assert_array_equal(again.colidx, csr.colidx)
        np.testing.assert_allclose(again.values, csr.values)
