"""Unit tests for the SpMV kernel/cost model, staircase generator and the
online reorderer extension."""

import numpy as np
import pytest

from repro.datasets import hidden_clusters, staircase
from repro.errors import ConfigError, ValidationError
from repro.gpu import GPUExecutor, P100
from repro.kernels import spmv, spmv_rowwise_reference
from repro.reorder import OnlineReorderer
from repro.similarity import average_consecutive_similarity
from repro.sparse import CSRMatrix, permute_csr_rows

from conftest import random_csr


class TestSpmv:
    def test_matches_dense(self, rng):
        m = random_csr(rng, 20, 15, 0.2)
        x = rng.normal(size=15)
        np.testing.assert_allclose(spmv(m, x), m.to_dense() @ x)

    def test_matches_reference_loops(self, paper_matrix, rng):
        x = rng.normal(size=6)
        np.testing.assert_allclose(
            spmv(paper_matrix, x), spmv_rowwise_reference(paper_matrix, x)
        )

    def test_empty_matrix(self):
        y = spmv(CSRMatrix.empty((4, 4)), np.ones(4))
        np.testing.assert_allclose(y, 0.0)

    def test_empty_rows_zero(self):
        m = CSRMatrix.from_dense([[0.0, 0.0], [2.0, 3.0]])
        y = spmv(m, np.array([1.0, 1.0]))
        np.testing.assert_allclose(y, [0.0, 5.0])

    def test_shape_mismatch_rejected(self, paper_matrix):
        with pytest.raises(ValueError):
            spmv(paper_matrix, np.ones(5))
        with pytest.raises(ValueError):
            spmv(paper_matrix, np.ones((6, 2)))


class TestSpmvCost:
    def test_basic_fields(self, rng):
        m = random_csr(rng, 200, 200, 0.05)
        cost = GPUExecutor(cache_mode="exact").spmv_cost(m)
        assert cost.op == "spmv" and cost.k == 1
        assert cost.flops == 2.0 * m.nnz
        assert cost.time_s > 0

    def test_spatial_locality_matters(self):
        # Ordered staircase: consecutive rows use adjacent x cache lines.
        ordered = staircase(512, 8, seed=0)
        rng = np.random.default_rng(1)
        scrambled = permute_csr_rows(ordered, rng.permutation(512).astype(np.int64))
        executor = GPUExecutor(
            P100.with_overrides(l2_bytes=16 * 1024), cache_mode="exact"
        )
        t_ordered = executor.spmv_cost(ordered).time_s
        t_scrambled = executor.spmv_cost(scrambled).time_s
        assert t_ordered < t_scrambled

    def test_requires_csr(self, rng):
        from repro.aspt import tile_matrix

        m = random_csr(rng, 20, 20, 0.2)
        with pytest.raises(ConfigError):
            GPUExecutor().spmv_cost(tile_matrix(m, 4))

    def test_unknown_variant(self, rng):
        with pytest.raises(ConfigError):
            GPUExecutor().spmv_cost(random_csr(rng, 10, 10, 0.3), "aspt")

    def test_empty_matrix(self):
        cost = GPUExecutor().spmv_cost(CSRMatrix.empty((8, 8)))
        assert cost.flops == 0.0 and cost.time_s > 0


class TestStaircase:
    def test_structure(self):
        m = staircase(5, 3, seed=0)
        assert m.shape == (5, 15)
        assert m.row_cols(2).tolist() == [6, 7, 8]

    def test_no_shared_columns(self):
        m = staircase(10, 4, seed=0)
        from repro.similarity import pairwise_jaccard_dense

        full = pairwise_jaccard_dense(m)
        np.fill_diagonal(full, 0.0)
        assert full.max() == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            staircase(0, 3)


class TestOnlineReorderer:
    def test_groups_identical_rows(self):
        idx = OnlineReorderer(100, siglen=32, seed=0)
        c1 = idx.insert_row([1, 5, 9])
        c2 = idx.insert_row([40, 50])
        c3 = idx.insert_row([1, 5, 9])
        assert c1 == c3 != c2
        assert idx.n_clusters == 2

    def test_recovers_hidden_clusters(self):
        m = hidden_clusters(40, 6, 512, 12, noise=0.05, seed=3)
        idx = OnlineReorderer(512, siglen=64, seed=0)
        idx.insert_matrix(m)
        reordered = permute_csr_rows(m, idx.order())
        assert (
            average_consecutive_similarity(reordered)
            > average_consecutive_similarity(m) + 0.3
        )

    def test_order_is_permutation(self, rng):
        m = random_csr(rng, 50, 40, 0.1)
        idx = OnlineReorderer(40, siglen=32, seed=0)
        idx.insert_matrix(m)
        assert sorted(idx.order().tolist()) == list(range(50))

    def test_min_similarity_gate(self):
        idx = OnlineReorderer(100, siglen=32, min_similarity=0.9, seed=0)
        idx.insert_row([1, 2, 3, 4])
        c2 = idx.insert_row([1, 2, 50, 60])  # Jaccard 2/6 < 0.9
        assert c2 == 1  # new cluster

    def test_max_cluster_cap(self):
        idx = OnlineReorderer(100, siglen=32, max_cluster=2, seed=0)
        clusters = [idx.insert_row([7, 8, 9]) for _ in range(5)]
        assert max(idx.cluster_sizes()) <= 2
        assert len(set(clusters)) >= 3

    def test_empty_rows_dont_cluster_with_content(self):
        idx = OnlineReorderer(100, siglen=32, seed=0)
        c1 = idx.insert_row([])
        c2 = idx.insert_row([3, 4])
        c3 = idx.insert_row([])
        assert c1 != c2
        assert c3 != c2

    def test_column_bound_validated(self):
        idx = OnlineReorderer(10, siglen=32)
        with pytest.raises(ValidationError):
            idx.insert_row([10])

    def test_matrix_width_validated(self, rng):
        idx = OnlineReorderer(10, siglen=32)
        with pytest.raises(ValidationError):
            idx.insert_matrix(random_csr(rng, 5, 12, 0.3))

    def test_bad_params(self):
        with pytest.raises(ValidationError):
            OnlineReorderer(10, siglen=10, bsize=3)
        with pytest.raises(ValidationError):
            OnlineReorderer(10, min_similarity=1.5)

    def test_empty_index_order(self):
        assert OnlineReorderer(10).order().size == 0

    def test_incremental_matches_batch_quality(self):
        # Online placement should reach similar panel quality as the batch
        # pipeline on a clean clustered stream.
        from repro.aspt import dense_ratio
        from repro.reorder import ReorderConfig, build_plan

        m = hidden_clusters(40, 8, 768, 16, noise=0.0, seed=5)
        idx = OnlineReorderer(768, siglen=64, seed=0)
        idx.insert_matrix(m)
        online_ratio = dense_ratio(permute_csr_rows(m, idx.order()), 8)
        plan = build_plan(
            m, ReorderConfig(siglen=64, panel_height=8, force_round1=True)
        )
        batch_ratio = plan.stats.dense_ratio_after
        assert online_ratio >= 0.8 * batch_ratio
