"""Unit tests for repro.util.workspace (size-class buffer pool)."""

import threading

import numpy as np
import pytest

from repro.util.workspace import Workspace, WorkspacePool, as_workspace
from repro.util.workspace import _size_class


class TestSizeClass:
    def test_powers_of_two_are_fixed_points(self):
        for exp in range(0, 20):
            assert _size_class(2**exp) == max(1, 2**exp)

    def test_rounds_up(self):
        assert _size_class(5) == 8
        assert _size_class(1025) == 2048

    def test_empty_request_gets_minimal_class(self):
        assert _size_class(0) == 1


class TestWorkspacePool:
    def test_take_shapes_and_dtype(self):
        pool = WorkspacePool()
        a = pool.take((3, 5), np.float32)
        assert a.shape == (3, 5)
        assert a.dtype == np.float32
        assert a.flags["C_CONTIGUOUS"]

    def test_reuse_within_size_class(self):
        pool = WorkspacePool()
        a = pool.take(5)
        base = a.base
        pool.give(a)
        b = pool.take(7)  # same class (8): must reuse the parked block
        assert b.base is base
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1

    def test_distinct_dtypes_do_not_share_blocks(self):
        pool = WorkspacePool()
        a = pool.take(8, np.float64)
        pool.give(a)
        b = pool.take(8, np.int64)
        assert pool.stats()["hits"] == 0
        assert b.dtype == np.int64

    def test_eviction_past_max_bytes(self):
        pool = WorkspacePool(max_bytes=8 * 16)  # room for one 16-element block
        a = pool.take(16)
        b = pool.take(16)
        pool.give(a)
        pool.give(b)  # second give exceeds the bound -> dropped
        stats = pool.stats()
        assert stats["evictions"] == 1
        assert pool.held_bytes == 8 * 16

    def test_clear_drops_idle_blocks(self):
        pool = WorkspacePool()
        pool.give(pool.take(64))
        assert pool.held_bytes > 0
        pool.clear()
        assert pool.held_bytes == 0
        pool.take(64)
        assert pool.stats()["misses"] == 2  # cleared block was not reused

    def test_give_rejects_foreign_scalars(self):
        pool = WorkspacePool()
        with pytest.raises(ValueError):
            pool.give(np.float64(3.0))  # not an array leased from a pool

    def test_negative_shape_rejected(self):
        pool = WorkspacePool()
        with pytest.raises(ValueError):
            pool.take((4, -1))

    def test_negative_max_bytes_rejected(self):
        with pytest.raises(ValueError):
            WorkspacePool(max_bytes=-1)

    def test_thread_safety_under_churn(self):
        pool = WorkspacePool(max_bytes=1 << 20)
        errors = []

        def churn(seed):
            try:
                rng = np.random.default_rng(seed)
                for _ in range(200):
                    n = int(rng.integers(1, 2048))
                    a = pool.take(n)
                    a[:] = seed  # touch the memory
                    pool.give(a)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = pool.stats()
        assert stats["hits"] + stats["misses"] == 8 * 200
        assert pool.held_bytes <= pool.max_bytes


class TestWorkspace:
    def test_context_manager_releases_blocks(self):
        pool = WorkspacePool()
        with pool.lease() as ws:
            ws.scratch((4, 4))
            ws.scratch(16, np.int64)
            assert pool.held_bytes == 0  # leased, not parked
        assert pool.held_bytes == (16 * 8) * 2

    def test_release_is_idempotent(self):
        pool = WorkspacePool()
        ws = pool.lease()
        ws.scratch(8)
        ws.release()
        held = pool.held_bytes
        ws.release()
        assert pool.held_bytes == held

    def test_scratch_reuses_released_blocks(self):
        pool = WorkspacePool()
        with pool.lease() as ws:
            ws.scratch((2, 8))
        with pool.lease() as ws:
            ws.scratch((2, 8))
        assert pool.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "held_bytes": 16 * 8,
        }


class TestAsWorkspace:
    def test_none_passthrough(self):
        assert as_workspace(None) == (None, False)

    def test_pool_leases_owned_workspace(self):
        pool = WorkspacePool()
        ws, owned = as_workspace(pool)
        assert isinstance(ws, Workspace)
        assert owned
        assert ws.pool is pool

    def test_workspace_is_borrowed(self):
        pool = WorkspacePool()
        ws = pool.lease()
        got, owned = as_workspace(ws)
        assert got is ws
        assert not owned

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_workspace(object())
