"""Unit tests for repro.kernels (SpMM, SDDMM, tiled variants)."""

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.errors import ShapeError
from repro.kernels import (
    assert_sddmm_correct,
    assert_spmm_correct,
    sddmm,
    sddmm_rowwise_reference,
    sddmm_tiled,
    spmm,
    spmm_blocked,
    spmm_rowwise_reference,
    spmm_tiled,
)
from repro.sparse import CSRMatrix, permute_csr_rows

from conftest import random_csr


@pytest.fixture
def operands(paper_matrix, rng):
    X = rng.normal(size=(6, 8))
    Y = rng.normal(size=(6, 8))
    return X, Y


class TestSpmm:
    def test_matches_dense(self, paper_matrix, operands):
        X, _ = operands
        got = spmm(paper_matrix, X)
        assert_spmm_correct(paper_matrix, X, got)

    def test_matches_reference_loops(self, paper_matrix, operands):
        X, _ = operands
        np.testing.assert_allclose(
            spmm(paper_matrix, X), spmm_rowwise_reference(paper_matrix, X)
        )

    def test_random_matrices(self, rng):
        for _ in range(5):
            m = random_csr(rng, 15, 11, 0.2)
            X = rng.normal(size=(11, 4))
            assert_spmm_correct(m, X, spmm(m, X))

    def test_empty_rows_stay_zero(self):
        m = CSRMatrix.from_dense([[0.0, 0.0], [1.0, 2.0]])
        got = spmm(m, np.ones((2, 3)))
        np.testing.assert_allclose(got[0], 0.0)
        np.testing.assert_allclose(got[1], 3.0)

    def test_empty_matrix(self):
        got = spmm(CSRMatrix.empty((3, 4)), np.ones((4, 2)))
        np.testing.assert_allclose(got, np.zeros((3, 2)))

    def test_shape_mismatch_rejected(self, paper_matrix):
        with pytest.raises(ShapeError):
            spmm(paper_matrix, np.ones((5, 3)))

    def test_out_parameter(self, paper_matrix, operands):
        X, _ = operands
        out = np.full((6, 8), 99.0)
        got = spmm(paper_matrix, X, out=out)
        assert got is out
        assert_spmm_correct(paper_matrix, X, got)

    def test_out_wrong_shape_rejected(self, paper_matrix, operands):
        X, _ = operands
        with pytest.raises(ShapeError):
            spmm(paper_matrix, X, out=np.zeros((5, 8)))

    def test_single_column(self, paper_matrix, rng):
        # SpMM with K=1 degenerates to SpMV.
        x = rng.normal(size=(6, 1))
        assert_spmm_correct(paper_matrix, x, spmm(paper_matrix, x))


class TestSpmmBlocked:
    def test_matches_unblocked(self, rng):
        m = random_csr(rng, 37, 23, 0.15)
        X = rng.normal(size=(23, 6))
        np.testing.assert_allclose(spmm_blocked(m, X, block_rows=5), spmm(m, X))

    def test_block_larger_than_matrix(self, rng):
        m = random_csr(rng, 10, 10, 0.3)
        X = rng.normal(size=(10, 3))
        np.testing.assert_allclose(spmm_blocked(m, X, block_rows=100), spmm(m, X))

    def test_block_of_one(self, rng):
        m = random_csr(rng, 8, 8, 0.3)
        X = rng.normal(size=(8, 2))
        np.testing.assert_allclose(spmm_blocked(m, X, block_rows=1), spmm(m, X))

    def test_empty_block_handled(self):
        # Rows 4..7 are all empty -> whole blocks with zero nnz.
        dense = np.zeros((8, 4))
        dense[0, 1] = 2.0
        m = CSRMatrix.from_dense(dense)
        X = np.ones((4, 3))
        np.testing.assert_allclose(spmm_blocked(m, X, block_rows=2), spmm(m, X))


class TestSddmm:
    def test_matches_dense(self, paper_matrix, operands):
        X, Y = operands
        got = sddmm(paper_matrix, X, Y)
        assert_sddmm_correct(paper_matrix, X, Y, got)

    def test_matches_reference_loops(self, paper_matrix, operands):
        X, Y = operands
        got = sddmm(paper_matrix, X, Y)
        ref = sddmm_rowwise_reference(paper_matrix, X, Y)
        np.testing.assert_allclose(got.values, ref.values)

    def test_scaling_by_sparse_values(self, operands):
        X, Y = operands
        base = CSRMatrix.from_dense(np.eye(6))
        doubled = base.with_values(base.values * 2.0)
        a = sddmm(base, X, Y)
        b = sddmm(doubled, X, Y)
        np.testing.assert_allclose(b.values, 2.0 * a.values)

    def test_pattern_preserved(self, paper_matrix, operands):
        X, Y = operands
        assert sddmm(paper_matrix, X, Y).same_pattern(paper_matrix)

    def test_empty_matrix(self):
        m = CSRMatrix.empty((3, 4))
        got = sddmm(m, np.ones((4, 2)), np.ones((3, 2)))
        assert got.nnz == 0

    def test_shape_mismatch_rejected(self, paper_matrix, rng):
        with pytest.raises(ShapeError):
            sddmm(paper_matrix, rng.normal(size=(6, 4)), rng.normal(size=(5, 4)))
        with pytest.raises(ShapeError):
            sddmm(paper_matrix, rng.normal(size=(6, 4)), rng.normal(size=(6, 5)))

    def test_random_matrices(self, rng):
        for _ in range(5):
            m = random_csr(rng, 12, 9, 0.25)
            X = rng.normal(size=(9, 5))
            Y = rng.normal(size=(12, 5))
            assert_sddmm_correct(m, X, Y, sddmm(m, X, Y))


class TestSpmmTiled:
    def test_paper_matrix(self, paper_matrix, operands):
        X, _ = operands
        tiled = tile_matrix(paper_matrix, 3, 2)
        assert_spmm_correct(paper_matrix, X, spmm_tiled(tiled, X))

    def test_reordered_paper_matrix(self, paper_matrix, operands):
        X, _ = operands
        reordered = permute_csr_rows(paper_matrix, np.array([0, 4, 2, 3, 1, 5]))
        tiled = tile_matrix(reordered, 3, 2)
        assert_spmm_correct(reordered, X, spmm_tiled(tiled, X))

    def test_random_matrices_various_panels(self, rng):
        for ph in (2, 3, 8):
            m = random_csr(rng, 25, 14, 0.25)
            X = rng.normal(size=(14, 4))
            tiled = tile_matrix(m, ph, 2)
            assert_spmm_correct(m, X, spmm_tiled(tiled, X))

    def test_all_dense(self, rng):
        dense = np.zeros((6, 8))
        dense[:, [1, 3]] = rng.normal(size=(6, 2))
        # ensure non-zero values
        dense[dense == 0.0] = 0.0
        m = CSRMatrix.from_dense(dense)
        X = rng.normal(size=(8, 4))
        tiled = tile_matrix(m, 3, 2)
        assert tiled.nnz_sparse == 0
        assert_spmm_correct(m, X, spmm_tiled(tiled, X))

    def test_all_sparse(self, rng):
        m = CSRMatrix.from_dense(np.eye(9))
        X = rng.normal(size=(9, 3))
        tiled = tile_matrix(m, 3, 2)
        assert tiled.nnz_dense == 0
        assert_spmm_correct(m, X, spmm_tiled(tiled, X))

    def test_matches_plain_spmm(self, rng):
        m = random_csr(rng, 30, 20, 0.2)
        X = rng.normal(size=(20, 6))
        tiled = tile_matrix(m, 4, 2)
        np.testing.assert_allclose(spmm_tiled(tiled, X), spmm(m, X))


class TestSddmmTiled:
    def test_paper_matrix(self, paper_matrix, operands):
        X, Y = operands
        tiled = tile_matrix(paper_matrix, 3, 2)
        got = sddmm_tiled(tiled, X, Y)
        assert_sddmm_correct(paper_matrix, X, Y, got)

    def test_random_matrices(self, rng):
        for ph in (2, 5):
            m = random_csr(rng, 20, 15, 0.25)
            X = rng.normal(size=(15, 4))
            Y = rng.normal(size=(20, 4))
            tiled = tile_matrix(m, ph, 2)
            assert_sddmm_correct(m, X, Y, sddmm_tiled(tiled, X, Y))

    def test_matches_plain_sddmm(self, rng):
        m = random_csr(rng, 18, 12, 0.3)
        X = rng.normal(size=(12, 5))
        Y = rng.normal(size=(18, 5))
        tiled = tile_matrix(m, 3, 2)
        got = sddmm_tiled(tiled, X, Y)
        np.testing.assert_allclose(got.values, sddmm(m, X, Y).values)

    def test_all_dense(self, rng):
        dense = np.zeros((4, 6))
        dense[:, [0, 5]] = 1.0
        m = CSRMatrix.from_dense(dense)
        X = rng.normal(size=(6, 3))
        Y = rng.normal(size=(4, 3))
        tiled = tile_matrix(m, 4, 2)
        assert tiled.nnz_sparse == 0
        assert_sddmm_correct(m, X, Y, sddmm_tiled(tiled, X, Y))


class TestValidators:
    def test_spmm_validator_detects_error(self, paper_matrix, operands):
        X, _ = operands
        bad = spmm(paper_matrix, X)
        bad[0, 0] += 1.0
        with pytest.raises(AssertionError):
            assert_spmm_correct(paper_matrix, X, bad)

    def test_sddmm_validator_detects_error(self, paper_matrix, operands):
        X, Y = operands
        bad = sddmm(paper_matrix, X, Y)
        bad = bad.with_values(bad.values + 1.0)
        with pytest.raises(AssertionError):
            assert_sddmm_correct(paper_matrix, X, Y, bad)

    def test_sddmm_validator_detects_pattern_mismatch(self, paper_matrix, operands):
        X, Y = operands
        other = CSRMatrix.from_dense(np.eye(6))
        with pytest.raises(AssertionError):
            assert_sddmm_correct(paper_matrix, X, Y, sddmm(other, X, Y))
