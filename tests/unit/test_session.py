"""Unit tests for repro.kernels.KernelSession (steady-state SpMM)."""

import threading

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.datasets import hidden_clusters
from repro.kernels import KernelSession, spmm, spmm_tiled
from repro.reorder import ReorderConfig, build_plan
from repro.util.workspace import WorkspacePool

from conftest import random_csr


@pytest.fixture(scope="module")
def matrix():
    return hidden_clusters(40, 4, 256, 10, noise=0.1, seed=3)


@pytest.fixture(scope="module")
def X(matrix):
    return np.random.default_rng(11).normal(size=(matrix.n_cols, 24))


class TestCsrSession:
    def test_bitwise_matches_oneshot(self, matrix, X):
        session = KernelSession(matrix)
        np.testing.assert_array_equal(session.run(X), spmm(matrix, X))

    def test_bitwise_on_random_matrices(self, rng):
        for _ in range(3):
            csr = random_csr(rng, 30, 17, density=0.2)
            X = rng.normal(size=(17, 9))
            np.testing.assert_array_equal(KernelSession(csr).run(X), spmm(csr, X))

    def test_float32_operand(self, matrix):
        X32 = np.random.default_rng(5).normal(size=(matrix.n_cols, 8))
        X32 = X32.astype(np.float32)
        got = KernelSession(matrix).run(X32)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(got, spmm(matrix, X32))

    def test_chunk_smaller_than_k(self, matrix, X):
        session = KernelSession(matrix, chunk_k=5)  # forces several chunks
        np.testing.assert_array_equal(session.run(X), spmm(matrix, X))

    def test_empty_rows_zeroed(self, rng):
        csr = random_csr(rng, 20, 10, density=0.05)  # sparse enough for gaps
        X = rng.normal(size=(10, 4))
        np.testing.assert_array_equal(KernelSession(csr).run(X), spmm(csr, X))

    def test_out_parameter_is_used_and_returned(self, matrix, X):
        session = KernelSession(matrix)
        out = np.empty((matrix.n_rows, X.shape[1]))
        got = session.run(X, out=out)
        assert got is out
        np.testing.assert_array_equal(out, spmm(matrix, X))

    def test_default_output_is_reused_per_thread(self, matrix, X):
        session = KernelSession(matrix)
        first = session.run(X)
        second = session.run(X)
        assert first is second  # pinned thread-local buffer

    def test_steady_state_stops_allocating(self, matrix, X):
        session = KernelSession(matrix)
        session.run(X)
        misses_after_warmup = session.stats()["misses"]
        for _ in range(4):
            session.run(X)
        stats = session.stats()
        assert stats["misses"] == misses_after_warmup
        assert stats["hits"] > 0

    def test_run_many_returns_owned_arrays(self, matrix, X):
        session = KernelSession(matrix)
        results = session.run_many([X, X * 2.0])
        assert results[0] is not results[1]
        np.testing.assert_array_equal(results[0], spmm(matrix, X))
        np.testing.assert_array_equal(results[1], spmm(matrix, X * 2.0))

    def test_shared_pool(self, matrix, X):
        pool = WorkspacePool()
        session = KernelSession(matrix, pool=pool)
        session.run(X)
        assert pool.stats()["misses"] > 0

    def test_close_clears_pool(self, matrix, X):
        session = KernelSession(matrix)
        session.run(X)
        session.close()
        assert session.pool.held_bytes == 0
        np.testing.assert_array_equal(session.run(X), spmm(matrix, X))

    def test_concurrent_runs_are_bitwise_correct(self, matrix):
        session = KernelSession(matrix)
        rng = np.random.default_rng(17)
        operands = [rng.normal(size=(matrix.n_cols, 16)) for _ in range(6)]
        expected = [spmm(matrix, X) for X in operands]
        results = [None] * len(operands)
        errors = []

        def worker(idx):
            try:
                for _ in range(5):
                    results[idx] = session.run(operands[idx]).copy()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(operands))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)

    def test_dimensions(self, matrix):
        session = KernelSession(matrix)
        assert session.n_rows == matrix.n_rows
        assert session.n_cols == matrix.n_cols

    def test_shape_mismatch_rejected(self, matrix):
        session = KernelSession(matrix)
        bad = np.zeros((matrix.n_cols + 1, 4))
        with pytest.raises(Exception):
            session.run(bad)


class TestTiledSession:
    def test_bitwise_matches_spmm_tiled(self, matrix, X):
        tiled = tile_matrix(matrix, 8, 2)
        session = KernelSession(tiled)
        np.testing.assert_array_equal(session.run(X), spmm_tiled(tiled, X))

    def test_all_sparse_panels(self, rng):
        csr = random_csr(rng, 24, 12, density=0.05)  # nothing promotes to dense
        tiled = tile_matrix(csr, 8, 4)
        X = rng.normal(size=(12, 6))
        np.testing.assert_array_equal(
            KernelSession(tiled).run(X), spmm_tiled(tiled, X)
        )


class TestPlanSession:
    def test_bitwise_matches_plan_spmm(self, matrix, X):
        plan = build_plan(matrix, ReorderConfig())
        session = KernelSession(plan)
        np.testing.assert_array_equal(session.run(X), plan.spmm(X))

    def test_plan_session_accessor(self, matrix, X):
        plan = build_plan(matrix, ReorderConfig())
        session = plan.session()
        assert isinstance(session, KernelSession)
        np.testing.assert_array_equal(session.run(X), plan.spmm(X))


class TestValidation:
    def test_bad_target_type(self):
        with pytest.raises(TypeError):
            KernelSession(np.zeros((3, 3)))

    def test_bad_chunk_k(self, matrix):
        with pytest.raises(ValueError):
            KernelSession(matrix, chunk_k=0)
