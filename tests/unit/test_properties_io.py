"""Unit tests for repro.sparse.properties and repro.sparse.io."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import (
    CSRMatrix,
    bandwidth,
    column_counts,
    density,
    nnz_per_row,
    read_matrix_market,
    row_support,
    structural_summary,
    write_matrix_market,
)

from conftest import random_csr


class TestProperties:
    def test_nnz_per_row(self, paper_matrix):
        assert nnz_per_row(paper_matrix).tolist() == [2, 3, 2, 1, 3, 2]

    def test_column_counts(self, paper_matrix):
        # Columns: 0 in rows {0,4}; 1 in {1,3}; 2 in {2,5}; 3 in {1,4};
        # 4 in {0,2,4}; 5 in {1,5}.
        assert column_counts(paper_matrix).tolist() == [2, 2, 2, 2, 3, 2]

    def test_density(self, paper_matrix):
        assert density(paper_matrix) == pytest.approx(13 / 36)

    def test_density_empty_shape(self):
        assert density(CSRMatrix.empty((0, 0))) == 0.0

    def test_bandwidth_diagonal_is_zero(self):
        assert bandwidth(CSRMatrix.from_dense(np.eye(5))) == 0

    def test_bandwidth_paper(self, paper_matrix):
        # Row 1 holds column 5 -> |1-5| = 4; row 4 holds column 0 -> 4.
        assert bandwidth(paper_matrix) == 4

    def test_bandwidth_empty(self):
        assert bandwidth(CSRMatrix.empty((3, 3))) == 0

    def test_row_support(self, paper_matrix):
        assert row_support(paper_matrix, 4).tolist() == [0, 3, 4]

    def test_structural_summary(self, paper_matrix):
        s = structural_summary(paper_matrix)
        assert s.n_rows == 6 and s.n_cols == 6 and s.nnz == 13
        assert s.row_nnz_min == 1 and s.row_nnz_max == 3
        assert s.col_nnz_max == 3
        assert s.empty_rows == 0
        assert s.as_dict()["nnz"] == 13

    def test_structural_summary_empty(self):
        s = structural_summary(CSRMatrix.empty((4, 4)))
        assert s.nnz == 0 and s.empty_rows == 4 and s.row_nnz_mean == 0.0


class TestMatrixMarketIO:
    def test_roundtrip(self, rng, tmp_path):
        m = random_csr(rng, 10, 8, 0.2)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, m, comment="test matrix")
        back = read_matrix_market(path)
        assert back.allclose(m)

    def test_roundtrip_stringio(self, paper_matrix):
        buf = io.StringIO()
        write_matrix_market(buf, paper_matrix)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert back.allclose(paper_matrix)

    def test_pattern_matrix(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 2\n1 1\n3 2\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 0] == 1.0
        assert m.to_dense()[2, 1] == 1.0
        assert m.nnz == 2

    def test_symmetric_expansion(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5.0\n3 1 2.0\n"
        m = read_matrix_market(io.StringIO(text))
        dense = m.to_dense()
        assert dense[0, 0] == 5.0
        assert dense[2, 0] == 2.0 and dense[0, 2] == 2.0
        assert m.nnz == 3

    def test_skew_symmetric_expansion(self):
        text = "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 1\n2 1 4.0\n"
        m = read_matrix_market(io.StringIO(text))
        dense = m.to_dense()
        assert dense[1, 0] == 4.0 and dense[0, 1] == -4.0

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 1] == 7.0

    def test_empty_matrix(self):
        text = "%%MatrixMarket matrix coordinate real general\n4 5 0\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.shape == (4, 5) and m.nnz == 0

    def test_missing_header_rejected(self):
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO("not a matrix\n1 1 0\n"))

    def test_unsupported_field_rejected(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n"
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(text))

    def test_unsupported_format_rejected(self):
        text = "%%MatrixMarket matrix array real general\n1 1\n1.0\n"
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(text))

    def test_wrong_entry_count_rejected(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(text))

    def test_out_of_range_index_rejected(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(text))

    def test_duplicates_summed_on_read(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n1 1 2.0\n"
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 0] == 3.0

    def test_matches_scipy_reader(self, rng, tmp_path):
        sio = pytest.importorskip("scipy.io")
        m = random_csr(rng, 12, 12, 0.15)
        path = tmp_path / "x.mtx"
        write_matrix_market(path, m)
        theirs = sio.mmread(str(path)).toarray()
        np.testing.assert_allclose(m.to_dense(), theirs)


class TestELLMatrix:
    def test_from_csr_roundtrip(self, rng):
        m = random_csr(rng, 15, 12, 0.25)
        from repro.sparse import ELLMatrix

        ell = ELLMatrix.from_csr(m)
        ell.validate()
        assert ell.to_csr().allclose(m)
        np.testing.assert_allclose(ell.to_dense(), m.to_dense())

    def test_nnz_and_padding(self):
        from repro.sparse import ELLMatrix

        m = CSRMatrix.from_dense([[1.0, 2.0, 3.0], [4.0, 0.0, 0.0]])
        ell = ELLMatrix.from_csr(m)
        assert ell.width == 3
        assert ell.nnz == 4
        assert ell.padding_ratio == pytest.approx(2 / 6)

    def test_max_width_guard(self, rng):
        from repro.errors import FormatError
        from repro.datasets import power_law_rows
        from repro.sparse import ELLMatrix

        skewed = power_law_rows(200, 200, 8, seed=0)
        with pytest.raises(FormatError):
            ELLMatrix.from_csr(skewed, max_width=4)

    def test_spmm_matches_csr(self, rng):
        from repro.kernels import spmm
        from repro.sparse import ELLMatrix

        m = random_csr(rng, 20, 16, 0.2)
        X = rng.normal(size=(16, 5))
        np.testing.assert_allclose(ELLMatrix.from_csr(m).spmm(X), spmm(m, X))

    def test_empty_matrix(self):
        from repro.sparse import ELLMatrix

        ell = ELLMatrix.from_csr(CSRMatrix.empty((3, 4)))
        assert ell.nnz == 0
        assert ell.to_csr().nnz == 0
        np.testing.assert_allclose(ell.spmm(np.ones((4, 2))), 0.0)

    def test_validate_rejects_right_packed(self):
        from repro.errors import FormatError
        from repro.sparse import ELLMatrix

        bad = ELLMatrix(
            (1, 4),
            np.array([[-1, 2]], dtype=np.int64),
            np.array([[0.0, 1.0]]),
        )
        with pytest.raises(FormatError):
            bad.validate()

    def test_validate_rejects_out_of_range(self):
        from repro.errors import FormatError
        from repro.sparse import ELLMatrix

        bad = ELLMatrix(
            (1, 2),
            np.array([[5]], dtype=np.int64),
            np.array([[1.0]]),
        )
        with pytest.raises(FormatError):
            bad.validate()
