"""Cross-backend differential test matrix.

Every (kernel x backend x dtype x degenerate shape) cell is held to the
numpy reference: bitwise equal for the ``numpy`` and ``codegen``
backends (which execute the same ufunc sequence in the same order), and
within 1 ULP for ``numba`` (whose only licensed deviation from the
reference accumulation is FMA contraction — ``fastmath`` is off, so no
reassociation).  The matrix is the lockdown for the backend subsystem:
any backend that cannot hold its tolerance on any cell fails here, not
in a downstream experiment.
"""

import numpy as np
import pytest

from conftest import random_csr
from repro.aspt import tile_matrix
from repro.kernels import (
    KernelSession,
    sddmm,
    spmm,
    spmm_tiled,
    spmv,
)
from repro.sparse import COOMatrix, CSRMatrix
from repro.util.workspace import WorkspacePool

#: (n_rows, n_cols) corners: empty matrix, single cell, single row,
#: single column, zero-dim edges.
DEGENERATE_SHAPES = [(0, 5), (5, 0), (0, 0), (1, 1), (1, 8), (8, 1)]

#: Operand dtypes the backends must be polymorphic over.
DTYPES = [np.float32, np.float64]


def _shaped_csr(rng, m, n, density=0.5):
    """A random CSR at a possibly degenerate shape (nnz may be 0)."""
    if m == 0 or n == 0:
        return CSRMatrix.empty((m, n))
    nnz = max(1, int(m * n * density))
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.normal(size=nnz)
    return COOMatrix.from_arrays((m, n), rows, cols, vals).to_csr()


def _assert_matches(backend_name, got, reference):
    """The per-backend tolerance contract (see module docstring)."""
    if backend_name == "numba":
        np.testing.assert_array_max_ulp(got, reference, maxulp=1)
    else:
        np.testing.assert_array_equal(got, reference)


class TestSpmmMatrix:
    @pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_degenerate_shapes(self, rng, backend_name, shape, dtype):
        m, n = shape
        csr = _shaped_csr(rng, m, n)
        X = rng.normal(size=(n, 4)).astype(dtype)
        reference = spmm(csr, X)
        _assert_matches(backend_name, spmm(csr, X, backend=backend_name), reference)

    @pytest.mark.parametrize("k", [0, 1, 3])
    def test_degenerate_operand_widths(self, rng, backend_name, k):
        csr = random_csr(rng, 12, 10, density=0.3)
        X = rng.normal(size=(10, k))
        reference = spmm(csr, X)
        _assert_matches(backend_name, spmm(csr, X, backend=backend_name), reference)

    def test_all_dense_panel(self, rng, backend_name):
        # Every row full: the nonempty_rows fast path (epilogue elided).
        dense = rng.normal(size=(8, 6))
        csr = CSRMatrix.from_dense(dense)
        X = rng.normal(size=(6, 5))
        reference = spmm(csr, X)
        _assert_matches(backend_name, spmm(csr, X, backend=backend_name), reference)

    def test_empty_rows_are_zeroed(self, rng, backend_name):
        # Rows with no non-zeros must come back exactly 0.0, even when
        # the caller's out buffer arrives full of garbage.
        dense = np.zeros((6, 5))
        dense[1] = rng.normal(size=5)
        dense[4] = rng.normal(size=5)
        csr = CSRMatrix.from_dense(dense)
        X = rng.normal(size=(5, 3))
        out = np.full((6, 3), np.nan, dtype=np.float64)
        got = spmm(csr, X, out=out, backend=backend_name)
        _assert_matches(backend_name, got, spmm(csr, X))
        assert np.all(got[[0, 2, 3, 5]] == 0.0)


class TestSpmvMatrix:
    @pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
    def test_degenerate_shapes(self, rng, backend_name, shape):
        m, n = shape
        csr = _shaped_csr(rng, m, n)
        x = rng.normal(size=n)
        reference = spmv(csr, x)
        _assert_matches(backend_name, spmv(csr, x, backend=backend_name), reference)

    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_dtypes(self, rng, backend_name, dtype):
        csr = random_csr(rng, 15, 12, density=0.25)
        x = rng.normal(size=12).astype(dtype)
        reference = spmv(csr, x)
        _assert_matches(backend_name, spmv(csr, x, backend=backend_name), reference)


class TestSddmmMatrix:
    @pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_degenerate_shapes(self, rng, backend_name, shape, dtype):
        m, n = shape
        csr = _shaped_csr(rng, m, n)
        X = rng.normal(size=(n, 4)).astype(dtype)
        Y = rng.normal(size=(m, 4)).astype(dtype)
        reference = sddmm(csr, X, Y)
        got = sddmm(csr, X, Y, backend=backend_name)
        assert got.values.dtype == reference.values.dtype
        _assert_matches(backend_name, got.values, reference.values)


class TestTiledMatrix:
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_tiled_spmm_matches_reference(self, rng, backend_name, dtype):
        csr = random_csr(rng, 32, 24, density=0.2)
        tiled = tile_matrix(csr, 8, 2)
        X = rng.normal(size=(24, 6)).astype(dtype)
        reference = spmm_tiled(tiled, X)
        got = spmm_tiled(tiled, X, backend=backend_name)
        _assert_matches(backend_name, got, reference)


class TestSessionMatrix:
    @pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
    def test_session_degenerate_shapes(self, rng, backend_name, shape):
        m, n = shape
        csr = _shaped_csr(rng, m, n)
        X = rng.normal(size=(n, 4))
        reference = spmm(csr, X)
        session = KernelSession(csr, backend=backend_name)
        _assert_matches(backend_name, session.run(X), reference)

    def test_pooled_session_is_bitwise_stable_per_backend(
        self, rng, backend_name
    ):
        # Within one backend, the pooled and direct paths must agree
        # bitwise — pooling is an allocation strategy, never a numeric one.
        csr = random_csr(rng, 30, 25, density=0.2)
        X = rng.normal(size=(25, 16))
        pooled = KernelSession(csr, backend=backend_name, pool=WorkspacePool())
        direct = KernelSession(csr, backend=backend_name, pool=None)
        np.testing.assert_array_equal(pooled.run(X), direct.run(X))
        # And repeated runs are bitwise-idempotent.
        np.testing.assert_array_equal(pooled.run(X), pooled.run(X))
