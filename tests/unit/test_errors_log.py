"""Unit tests for repro.errors and repro.util.log."""

import logging

import pytest

from repro.errors import (
    ConfigError,
    DatasetError,
    FormatError,
    ReproError,
    ShapeError,
    SimulationError,
    ValidationError,
)
from repro.util.log import enable_console_logging, get_logger


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ShapeError, FormatError, ValidationError, ConfigError, DatasetError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize(
        "exc", [ShapeError, FormatError, ValidationError, ConfigError]
    )
    def test_value_error_family(self, exc):
        # Callers that catch ValueError (NumPy-idiomatic) keep working.
        assert issubclass(exc, ValueError)

    @pytest.mark.parametrize("exc", [SimulationError, DatasetError])
    def test_runtime_error_family(self, exc):
        assert issubclass(exc, RuntimeError)

    def test_catch_family(self):
        with pytest.raises(ReproError):
            raise ShapeError("boom")


class TestLogging:
    def test_get_logger_names(self):
        assert get_logger().name == "repro"
        assert get_logger("experiments").name == "repro.experiments"

    def test_enable_console_logging_idempotent(self):
        logger = enable_console_logging()
        n = len(logger.handlers)
        enable_console_logging()
        assert len(logger.handlers) == n
        assert logger.level == logging.INFO

    def test_child_propagates_to_library_logger(self, caplog):
        enable_console_logging()
        child = get_logger("test_child")
        with caplog.at_level(logging.INFO, logger="repro"):
            child.info("hello from child")
        assert any("hello from child" in r.message for r in caplog.records)
