"""Unit tests for the perf-regression gate logic (repro.bench.gate).

The suites themselves run real workloads and are exercised by CI's
``bench-gate`` job; here we test the *gating* logic — comparison,
tolerance semantics, report formatting — on synthetic documents.
"""

import pytest

from repro.bench import SUITES, compare_results, run_suite
from repro.bench.gate import DEFAULT_TOLERANCE, baseline_path, format_report


def doc(metrics=None, speedups=None):
    return {
        "name": "fake",
        "metrics": {
            k: {"median_ms": v, "p95_ms": v, "repeats": 3}
            for k, v in (metrics or {}).items()
        },
        "speedups": dict(speedups or {}),
    }


class TestCompareResults:
    def test_within_tolerance_is_ok(self):
        rows = compare_results(
            doc({"spmm": 100.0}), doc({"spmm": 120.0}), tolerance=0.25
        )
        assert rows == [
            {
                "kind": "metric",
                "name": "spmm",
                "baseline": 100.0,
                "current": 120.0,
                "ratio": 1.2,
                "regressed": False,
            }
        ]

    def test_metric_regresses_upward(self):
        rows = compare_results(
            doc({"spmm": 100.0}), doc({"spmm": 130.0}), tolerance=0.25
        )
        assert rows[0]["regressed"]

    def test_metric_improvement_never_regresses(self):
        rows = compare_results(
            doc({"spmm": 100.0}), doc({"spmm": 10.0}), tolerance=0.25
        )
        assert not rows[0]["regressed"]

    def test_speedup_regresses_downward(self):
        base = doc(speedups={"session_vs_oneshot": 3.0})
        ok = compare_results(base, doc(speedups={"session_vs_oneshot": 2.4}), 0.25)
        bad = compare_results(base, doc(speedups={"session_vs_oneshot": 2.0}), 0.25)
        assert not ok[0]["regressed"]
        assert bad[0]["regressed"]

    def test_speedup_improvement_never_regresses(self):
        rows = compare_results(
            doc(speedups={"s": 3.0}), doc(speedups={"s": 9.0}), 0.25
        )
        assert not rows[0]["regressed"]

    def test_non_shared_metrics_are_skipped(self):
        rows = compare_results(
            doc({"old_only": 5.0}), doc({"new_only": 5.0}), 0.25
        )
        assert rows == []

    def test_tolerance_is_relative(self):
        rows = compare_results(doc({"m": 10.0}), doc({"m": 10.9}), tolerance=0.1)
        assert not rows[0]["regressed"]
        rows = compare_results(doc({"m": 10.0}), doc({"m": 11.1}), tolerance=0.1)
        assert rows[0]["regressed"]

    def test_zero_baseline_does_not_divide(self):
        rows = compare_results(doc({"m": 0.0}), doc({"m": 5.0}), 0.25)
        assert rows[0]["ratio"] == 1.0


class TestFormatReport:
    def test_mentions_every_row_and_verdict(self):
        rows = compare_results(
            doc({"spmm": 100.0}, {"s": 3.0}),
            doc({"spmm": 180.0}, {"s": 3.1}),
            DEFAULT_TOLERANCE,
        )
        text = format_report("kernels", rows, DEFAULT_TOLERANCE)
        assert "suite kernels" in text
        assert "spmm" in text and "REGRESSED" in text
        assert "s" in text and "ok" in text

    def test_empty_comparison_is_explicit(self):
        text = format_report("kernels", [], DEFAULT_TOLERANCE)
        assert "no shared metrics" in text


class TestSuiteRegistry:
    def test_registered_suites(self):
        assert set(SUITES) == {"kernels", "preproc"}

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suite("nope")

    def test_baseline_path_layout(self, tmp_path):
        assert baseline_path("kernels", tmp_path) == tmp_path / "BENCH_kernels.json"
