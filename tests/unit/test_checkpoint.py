"""Unit tests for the sweep journal, resume protocol, and `repro doctor`."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentConfig
from repro.planstore import DiskPlanStore, PlanDecisions
from repro.reorder import ReorderConfig, build_plan
from repro.resilience import SweepJournal, doctor_report, journal_status
from repro.resilience.checkpoint import sweep_config_digest
from repro.resilience.doctor import format_doctor_report, heal_store, store_health


@pytest.fixture
def config():
    return ExperimentConfig(scale="tiny", repeats=1, ks=(64,))


class TestJournalRoundtrip:
    def test_start_write_read(self, tmp_path, config):
        path = tmp_path / "sweep.journal"
        with SweepJournal.start_sweep(path, config, 3) as journal:
            journal.mark_started("0:a")
            journal.mark_done("0:a", [{"name": "a", "k": 64}])
            journal.mark_started("1:b")
        status = journal_status(path)
        assert status["valid"]
        assert status["total"] == 3
        assert status["completed"] == ["0:a"]
        assert status["in_flight"] == ["1:b"]
        assert not status["complete"] and not status["interrupted"]

    def test_complete_and_interrupt_markers(self, tmp_path, config):
        path = tmp_path / "sweep.journal"
        with SweepJournal.start_sweep(path, config, 1) as journal:
            journal.mark_interrupted()
            journal.mark_complete()
        status = journal_status(path)
        assert status["interrupted"] and status["complete"]

    def test_resume_returns_done_records(self, tmp_path, config):
        path = tmp_path / "sweep.journal"
        with SweepJournal.start_sweep(path, config, 2) as journal:
            journal.mark_done("0:a", [{"name": "a"}])
        journal, done = SweepJournal.resume_sweep(path, config, 2)
        with journal:
            assert done == {"0:a": [{"name": "a"}]}
            journal.mark_done("1:b", [{"name": "b"}])
        status = journal_status(path)
        assert status["completed"] == ["0:a", "1:b"]

    def test_resume_missing_file_starts_fresh(self, tmp_path, config):
        journal, done = SweepJournal.resume_sweep(
            tmp_path / "nope.journal", config, 2
        )
        with journal:
            assert done == {}
        assert journal_status(tmp_path / "nope.journal")["valid"]


class TestJournalSafety:
    def test_torn_final_line_is_dropped(self, tmp_path, config):
        path = tmp_path / "sweep.journal"
        with SweepJournal.start_sweep(path, config, 2) as journal:
            journal.mark_done("0:a", [{"name": "a"}])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "done", "key": "1:b", "rec')  # crash mid-append
        status = journal_status(path)
        assert status["valid"]
        assert status["completed"] == ["0:a"]
        # Resume still works and ignores the torn line.
        journal, done = SweepJournal.resume_sweep(path, config, 2)
        journal.close()
        assert set(done) == {"0:a"}

    def test_mid_file_garbage_is_invalid_not_silently_dropped(
        self, tmp_path, config
    ):
        path = tmp_path / "sweep.journal"
        with SweepJournal.start_sweep(path, config, 2) as journal:
            journal.mark_done("0:a", [])
        text = path.read_text()
        path.write_text(text + "not json\n" + '{"event": "complete"}\n')
        status = journal_status(path)
        assert not status["valid"]
        with pytest.raises(ConfigError):
            SweepJournal.resume_sweep(path, config, 2)

    def test_config_digest_mismatch_blocks_resume(self, tmp_path, config):
        path = tmp_path / "sweep.journal"
        SweepJournal.start_sweep(path, config, 2).close()
        other = ExperimentConfig(scale="tiny", repeats=1, ks=(128,))
        with pytest.raises(ConfigError, match="different"):
            SweepJournal.resume_sweep(path, other, 2)
        # Corpus-size changes block too.
        with pytest.raises(ConfigError):
            SweepJournal.resume_sweep(path, config, 3)

    def test_digest_sensitive_to_every_field(self, config):
        base = sweep_config_digest(config, 4)
        assert base == sweep_config_digest(config, 4)
        assert base != sweep_config_digest(config, 5)
        other = ExperimentConfig(scale="tiny", repeats=1, ks=(64,), verify=True)
        assert base != sweep_config_digest(other, 4)

    def test_missing_journal_status(self, tmp_path):
        status = journal_status(tmp_path / "absent.journal")
        assert status == {"exists": False, "valid": False}


class TestDoctor:
    CFG = ReorderConfig(siglen=32, panel_height=8)

    def _store_with_quarantine(self, tmp_path):
        from repro.datasets import hidden_clusters

        matrix = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)
        decisions = PlanDecisions.from_plan(build_plan(matrix, self.CFG))
        store = DiskPlanStore(tmp_path)
        store.put("a" * 32, decisions)
        store.put("b" * 32, decisions)
        # Quarantine one entry by hand: a healthy file moved aside.
        live = store.path_for("a" * 32)
        live.rename(live.with_name(live.name + ".corrupt"))
        return store

    def test_store_health_counts(self, tmp_path):
        self._store_with_quarantine(tmp_path)
        health = store_health(tmp_path)
        assert health["exists"]
        assert health["entries"] == 1
        assert len(health["quarantined"]) == 1

    def test_store_health_missing_dir(self, tmp_path):
        health = store_health(tmp_path / "absent")
        assert not health["exists"]
        assert health["quarantined"] == []

    def test_heal_restores_valid_quarantined_entry(self, tmp_path):
        store = self._store_with_quarantine(tmp_path)
        healed = heal_store(tmp_path)
        assert [n for n in healed["restored"]]
        assert store.get("a" * 32) is not None
        assert not store.quarantined()

    def test_heal_missing_dir_is_vacuous(self, tmp_path):
        assert heal_store(tmp_path / "absent") == {
            "restored": [], "dropped": [], "unrecoverable": [],
        }

    def test_doctor_report_flags_quarantine_then_heals(self, tmp_path):
        self._store_with_quarantine(tmp_path)
        text, problems = doctor_report(cache_dir=tmp_path)
        assert problems
        assert "1 quarantined" in text
        text, problems = doctor_report(cache_dir=tmp_path, heal=True)
        assert not problems
        assert "restored" in text

    def test_doctor_report_invalid_journal_is_a_problem(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_text("not a journal\nat all\n")
        text, problems = doctor_report(checkpoint=path)
        assert problems
        assert "INVALID" in text

    def test_doctor_report_nothing_requested(self):
        text, problems = doctor_report()
        assert not problems
        assert "nothing to check" in text

    def test_format_report_mentions_progress(self, tmp_path):
        config = ExperimentConfig(scale="tiny", repeats=1, ks=(64,))
        path = tmp_path / "sweep.journal"
        with SweepJournal.start_sweep(path, config, 2) as journal:
            journal.mark_started("0:a")
            journal.mark_done("0:a", [])
            journal.mark_started("1:b")
            journal.mark_interrupted()
        text = format_doctor_report(
            journal=journal_status(path), journal_path=str(path)
        )
        assert "1/2 matrices completed" in text
        assert "1:b" in text
        assert "interrupted" in text


class TestHealEndToEnd:
    CFG = ReorderConfig(siglen=32, panel_height=8)

    def test_corrupt_quarantine_is_unrecoverable_but_dropped_after_rebuild(
        self, tmp_path
    ):
        from repro.datasets import hidden_clusters

        matrix = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)
        decisions = PlanDecisions.from_plan(build_plan(matrix, self.CFG))
        store = DiskPlanStore(tmp_path)
        key = "c" * 32
        store.put(key, decisions)
        path = store.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

        assert store.get(key) is None  # quarantines the damaged file
        healed = store.heal()
        assert healed["restored"] == []
        assert len(healed["unrecoverable"]) == 1

        # A rebuild (put) self-heals: the stale quarantine is dropped.
        store.put(key, decisions)
        got = store.get(key)
        np.testing.assert_array_equal(got.row_order, decisions.row_order)
        assert not store.quarantined()
