"""Differential tests: tracing must never influence the computation.

The observability layer's determinism contract (see
``repro.observability.tracing``) is that an installed tracer changes
*nothing* about what the library computes — plans and kernel results
must be bitwise identical with and without tracing, on every
degradation-ladder rung, with metrics flowing either way.
"""

import numpy as np
import pytest

from repro.datasets import hidden_clusters
from repro.kernels import KernelSession
from repro.observability import Tracer, tracing
from repro.reorder import ReorderConfig, build_plan
from repro.resilience.policy import LADDER_RUNGS, ladder_rungs


@pytest.fixture(scope="module")
def matrix():
    return hidden_clusters(40, 8, 1024, 12, noise=0.1, seed=3)


def _rung_configs():
    """One ``(label, config)`` per ladder rung, built the ladder's way."""
    base = ReorderConfig(panel_height=8, force_round1=True, force_round2=True)
    rungs = ladder_rungs(base)
    assert [label for label, _ in rungs] == list(LADDER_RUNGS)
    return rungs


@pytest.mark.parametrize(
    ("label", "config"),
    _rung_configs(),
    ids=[label for label, _ in _rung_configs()],
)
class TestTracedRunsAreBitwiseIdentical:
    def test_plan_and_kernel_output_match_untraced(self, matrix, label, config):
        X = np.random.default_rng(7).normal(size=(matrix.n_cols, 16))

        plain_plan = build_plan(matrix, config)
        plain_session = KernelSession(plain_plan)
        plain_out = plain_session.run(X).copy()

        with tracing(Tracer()) as tracer:
            traced_plan = build_plan(matrix, config)
            traced_session = KernelSession(traced_plan)
            traced_out = traced_session.run(X).copy()

        np.testing.assert_array_equal(traced_plan.row_order, plain_plan.row_order)
        np.testing.assert_array_equal(
            traced_plan.remainder_order, plain_plan.remainder_order
        )
        assert traced_plan.stats == plain_plan.stats
        np.testing.assert_array_equal(traced_out, plain_out)
        # The tracer really was recording during the traced run.
        assert any(
            e["name"] == "kernel.run"
            for e in tracer.chrome_trace()["traceEvents"]
        )
