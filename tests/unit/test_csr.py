"""Unit tests for repro.sparse.csr."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import CSRMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(m.to_dense(), dense)
        assert m.nnz == 4

    def test_from_arrays_canonicalises_unsorted_rows(self):
        # row 0 has columns [2, 0] out of order
        m = CSRMatrix.from_arrays((1, 3), [0, 2], [2, 0], [1.0, 2.0])
        assert m.colidx.tolist() == [0, 2]
        assert m.values.tolist() == [2.0, 1.0]

    def test_from_arrays_sums_duplicates(self):
        m = CSRMatrix.from_arrays((1, 3), [0, 3], [1, 1, 2], [1.0, 2.0, 5.0])
        assert m.colidx.tolist() == [1, 2]
        assert m.values.tolist() == [3.0, 5.0]

    def test_from_arrays_default_values(self):
        m = CSRMatrix.from_arrays((2, 2), [0, 1, 2], [0, 1])
        assert m.values.tolist() == [1.0, 1.0]

    def test_empty(self):
        m = CSRMatrix.empty((3, 4))
        assert m.nnz == 0
        assert m.rowptr.tolist() == [0, 0, 0, 0]

    def test_bad_rowptr_start_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix.from_arrays((1, 2), [1, 2], [0, 1])

    def test_decreasing_rowptr_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix.from_arrays((2, 2), [0, 2, 1], [0, 1])

    def test_rowptr_nnz_mismatch_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix.from_arrays((1, 2), [0, 3], [0, 1])

    def test_col_out_of_range_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix.from_arrays((1, 2), [0, 1], [2])

    def test_wrong_rowptr_length_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix.from_arrays((3, 2), [0, 1], [0])


class TestAccessors:
    def test_row_view(self, paper_matrix):
        cols, vals = paper_matrix.row(4)
        assert cols.tolist() == [0, 3, 4]
        assert vals.size == 3

    def test_row_out_of_range(self, paper_matrix):
        with pytest.raises(IndexError):
            paper_matrix.row(6)
        with pytest.raises(IndexError):
            paper_matrix.row(-1)

    def test_row_lengths(self, paper_matrix):
        assert paper_matrix.row_lengths().tolist() == [2, 3, 2, 1, 3, 2]

    def test_row_ids(self, paper_matrix):
        ids = paper_matrix.row_ids()
        assert ids.size == 13
        assert np.bincount(ids).tolist() == [2, 3, 2, 1, 3, 2]

    def test_nnz_and_shape(self, paper_matrix):
        assert paper_matrix.nnz == 13
        assert paper_matrix.n_rows == 6 and paper_matrix.n_cols == 6

    def test_validate_passes_on_canonical(self, paper_matrix):
        paper_matrix.validate()


class TestDerivations:
    def test_with_values(self, paper_matrix):
        new = paper_matrix.with_values(np.zeros(13))
        assert new.values.sum() == 0.0
        assert new.same_pattern(paper_matrix)

    def test_with_values_wrong_size(self, paper_matrix):
        with pytest.raises(ShapeError):
            paper_matrix.with_values(np.zeros(5))

    def test_pattern(self, paper_matrix):
        p = paper_matrix.pattern()
        assert p.values.tolist() == [1.0] * 13

    def test_copy_is_deep(self, paper_matrix):
        c = paper_matrix.copy()
        c.values[0] = -1.0
        assert paper_matrix.values[0] != -1.0

    def test_transpose_involution(self, paper_matrix):
        t2 = paper_matrix.transpose().transpose()
        assert t2.allclose(paper_matrix)

    def test_transpose_matches_dense(self, paper_matrix):
        np.testing.assert_allclose(
            paper_matrix.transpose().to_dense(), paper_matrix.to_dense().T
        )

    def test_to_coo_roundtrip(self, paper_matrix):
        back = paper_matrix.to_coo().to_csr()
        assert back.allclose(paper_matrix)


class TestComparison:
    def test_same_pattern_ignores_values(self, paper_matrix):
        other = paper_matrix.with_values(np.ones(13) * 7)
        assert paper_matrix.same_pattern(other)
        assert not paper_matrix.allclose(other)

    def test_allclose_true_for_self(self, paper_matrix):
        assert paper_matrix.allclose(paper_matrix.copy())

    def test_different_shape_not_same_pattern(self):
        a = CSRMatrix.empty((2, 2))
        b = CSRMatrix.empty((2, 3))
        assert not a.same_pattern(b)


class TestScipyOracle:
    def test_matches_scipy_csr(self):
        sp = pytest.importorskip("scipy.sparse")
        rng = np.random.default_rng(5)
        dense = rng.random((20, 30))
        dense[dense < 0.8] = 0.0
        ours = CSRMatrix.from_dense(dense)
        theirs = sp.csr_matrix(dense)
        np.testing.assert_array_equal(ours.rowptr, theirs.indptr)
        np.testing.assert_array_equal(ours.colidx, theirs.indices)
        np.testing.assert_allclose(ours.values, theirs.data)
