"""Unit tests for repro.baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BidmachLikeSDDMM,
    CusparseLikeSpMM,
    apply_symmetric_order,
    bisection_order,
    reverse_cuthill_mckee,
    symmetrized_adjacency,
)
from repro.errors import ValidationError
from repro.kernels import assert_sddmm_correct, assert_spmm_correct
from repro.sparse import CSRMatrix, bandwidth

from conftest import random_csr


def banded_matrix(n=40, band=2):
    dense = np.zeros((n, n))
    for i in range(n):
        for j in range(max(0, i - band), min(n, i + band + 1)):
            dense[i, j] = 1.0
    return CSRMatrix.from_dense(dense)


class TestWrappers:
    def test_cusparse_like_correct(self, rng):
        m = random_csr(rng, 20, 15, 0.2)
        X = rng.normal(size=(15, 4))
        kernel = CusparseLikeSpMM(m)
        assert_spmm_correct(m, X, kernel.spmm(X))

    def test_cusparse_like_cost(self, rng):
        m = random_csr(rng, 20, 15, 0.2)
        cost = CusparseLikeSpMM(m).cost(512)
        assert cost.variant == "cusparse" and cost.op == "spmm"

    def test_bidmach_like_correct(self, rng):
        m = random_csr(rng, 20, 15, 0.2)
        X = rng.normal(size=(15, 4))
        Y = rng.normal(size=(20, 4))
        kernel = BidmachLikeSDDMM(m)
        assert_sddmm_correct(m, X, Y, kernel.sddmm(X, Y))

    def test_bidmach_like_cost(self, rng):
        m = random_csr(rng, 20, 20, 0.2)
        cost = BidmachLikeSDDMM(m).cost(512)
        assert cost.variant == "bidmach" and cost.op == "sddmm"


class TestSymmetrizedAdjacency:
    def test_symmetric_no_diagonal(self, rng):
        m = random_csr(rng, 15, 15, 0.2)
        adj = symmetrized_adjacency(m)
        dense = adj.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert np.diag(dense).sum() == 0.0

    def test_rectangular_rejected(self, rng):
        with pytest.raises(ValidationError):
            symmetrized_adjacency(random_csr(rng, 5, 6, 0.2))

    def test_pattern_values_are_one(self, rng):
        adj = symmetrized_adjacency(random_csr(rng, 10, 10, 0.3))
        assert set(np.unique(adj.values)) <= {1.0}


class TestRCM:
    def test_is_permutation(self, rng):
        m = random_csr(rng, 30, 30, 0.1)
        order = reverse_cuthill_mckee(m)
        assert sorted(order.tolist()) == list(range(30))

    def test_reduces_bandwidth_of_shuffled_band(self, rng):
        m = banded_matrix(50, 2)
        shuffle = rng.permutation(50).astype(np.int64)
        shuffled = apply_symmetric_order(m, shuffle)
        assert bandwidth(shuffled) > bandwidth(m)
        recovered = apply_symmetric_order(shuffled, reverse_cuthill_mckee(shuffled))
        assert bandwidth(recovered) < bandwidth(shuffled) / 2

    def test_disconnected_components_covered(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[4, 5] = dense[5, 4] = 1.0
        order = reverse_cuthill_mckee(CSRMatrix.from_dense(dense))
        assert sorted(order.tolist()) == list(range(6))

    def test_empty_graph(self):
        order = reverse_cuthill_mckee(CSRMatrix.empty((5, 5)))
        assert sorted(order.tolist()) == list(range(5))


class TestBisection:
    def test_is_permutation(self, rng):
        m = random_csr(rng, 40, 40, 0.08)
        order = bisection_order(m, leaf_size=8)
        assert sorted(order.tolist()) == list(range(40))

    def test_leaf_size_one(self, rng):
        m = random_csr(rng, 20, 20, 0.15)
        order = bisection_order(m, leaf_size=1)
        assert sorted(order.tolist()) == list(range(20))

    def test_groups_connected_blocks(self):
        # Two disjoint cliques: bisection must label each contiguously.
        dense = np.zeros((8, 8))
        dense[:4, :4] = 1.0
        dense[4:, 4:] = 1.0
        np.fill_diagonal(dense, 0.0)
        order = bisection_order(CSRMatrix.from_dense(dense), leaf_size=4)
        first_half = set(order[:4].tolist())
        assert first_half in ({0, 1, 2, 3}, {4, 5, 6, 7})

    def test_invalid_leaf_size(self, rng):
        with pytest.raises(ValidationError):
            bisection_order(random_csr(rng, 10, 10, 0.2), leaf_size=0)


class TestApplySymmetricOrder:
    def test_matches_dense_relabelling(self, rng):
        m = random_csr(rng, 12, 12, 0.25)
        order = rng.permutation(12).astype(np.int64)
        got = apply_symmetric_order(m, order)
        dense = m.to_dense()
        expected = dense[np.ix_(order, order)]
        np.testing.assert_allclose(got.to_dense(), expected)

    def test_identity(self, rng):
        m = random_csr(rng, 10, 10, 0.3)
        got = apply_symmetric_order(m, np.arange(10))
        assert got.allclose(m)

    def test_preserves_spectrum_symmetric(self, rng):
        # Vertex relabelling is a similarity transform: eigenvalues of a
        # symmetric matrix are invariant.
        m = symmetrized_adjacency(random_csr(rng, 12, 12, 0.3))
        order = rng.permutation(12).astype(np.int64)
        a = np.sort(np.linalg.eigvalsh(m.to_dense()))
        b = np.sort(np.linalg.eigvalsh(apply_symmetric_order(m, order).to_dense()))
        np.testing.assert_allclose(a, b, atol=1e-9)
