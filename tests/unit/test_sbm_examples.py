"""Tests for the stochastic block model generator and example smoke runs."""

import runpy
import sys

import numpy as np
import pytest

from repro.datasets import get_generator, stochastic_block_model
from repro.similarity import average_consecutive_similarity
from repro.sparse import CSRMatrix


class TestStochasticBlockModel:
    def test_shape_and_symmetry(self):
        m = stochastic_block_model(8, 10, p_in=0.4, p_out=0.01, seed=0)
        assert m.shape == (80, 80)
        dense = m.to_dense()
        np.testing.assert_allclose(dense != 0, (dense != 0).T)
        assert np.diag(dense).sum() == 0.0

    def test_shuffle_hides_structure(self):
        hidden = stochastic_block_model(32, 16, p_in=0.3, p_out=0.001, seed=1)
        grouped = stochastic_block_model(
            32, 16, p_in=0.3, p_out=0.001, shuffle=False, seed=1
        )
        assert (
            average_consecutive_similarity(grouped)
            > average_consecutive_similarity(hidden) + 0.05
        )

    def test_p_out_zero_block_diagonal_when_unshuffled(self):
        m = stochastic_block_model(4, 8, p_in=0.9, p_out=0.0, shuffle=False, seed=0)
        dense = m.to_dense()
        assert dense[:8, 8:].sum() == 0.0

    def test_deterministic(self):
        a = stochastic_block_model(6, 8, seed=9)
        b = stochastic_block_model(6, 8, seed=9)
        assert a.allclose(b)

    def test_invalid_probability(self):
        with pytest.raises(Exception):
            stochastic_block_model(4, 4, p_in=1.5)

    def test_registered(self):
        gen = get_generator("stochastic_block_model")
        assert isinstance(gen(4, 4, seed=0), CSRMatrix)


@pytest.mark.parametrize(
    "script",
    [
        "examples/quickstart.py",
        "examples/gnn_graph_convolution.py",
        "examples/collaborative_filtering.py",
        "examples/reordering_analysis.py",
        "examples/streaming_updates.py",
        "examples/plan_caching.py",
    ],
)
def test_example_runs(script, capsys, monkeypatch):
    """Each shipped example must execute cleanly end to end."""
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # produced some report
    assert "Traceback" not in out
