"""Unit tests for repro.sparse.coo."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import COOMatrix


class TestConstruction:
    def test_from_arrays_basic(self):
        m = COOMatrix.from_arrays((3, 3), np.array([0, 2]), np.array([1, 2]), [5.0, 7.0])
        assert m.shape == (3, 3)
        assert m.nnz == 2

    def test_default_values_are_ones(self):
        m = COOMatrix.from_arrays((2, 2), np.array([0, 1]), np.array([0, 1]))
        assert m.values.tolist() == [1.0, 1.0]

    def test_empty(self):
        m = COOMatrix.empty((4, 5))
        assert m.shape == (4, 5) and m.nnz == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix.from_arrays((2, 2), np.array([0]), np.array([0, 1]))

    def test_values_length_mismatch_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix.from_arrays((2, 2), np.array([0]), np.array([0]), [1.0, 2.0])

    def test_row_out_of_range_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix.from_arrays((2, 2), np.array([2]), np.array([0]))

    def test_col_out_of_range_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix.from_arrays((2, 2), np.array([0]), np.array([-1]))

    def test_negative_shape_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix.from_arrays((-1, 2), np.array([], dtype=np.int64), np.array([], dtype=np.int64))


class TestSumDuplicates:
    def test_sums_and_sorts(self):
        m = COOMatrix.from_arrays(
            (2, 3),
            np.array([1, 0, 1, 1]),
            np.array([2, 0, 2, 0]),
            [1.0, 2.0, 3.0, 4.0],
        )
        out = m.sum_duplicates()
        assert out.rows.tolist() == [0, 1, 1]
        assert out.cols.tolist() == [0, 0, 2]
        assert out.values.tolist() == [2.0, 4.0, 4.0]

    def test_empty(self):
        out = COOMatrix.empty((2, 2)).sum_duplicates()
        assert out.nnz == 0

    def test_dense_equivalence(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 5, 40)
        cols = rng.integers(0, 6, 40)
        vals = rng.normal(size=40)
        m = COOMatrix.from_arrays((5, 6), rows, cols, vals)
        np.testing.assert_allclose(m.sum_duplicates().to_dense(), m.to_dense())


class TestToDense:
    def test_duplicates_summed(self):
        m = COOMatrix.from_arrays((1, 1), np.array([0, 0]), np.array([0, 0]), [1.0, 2.0])
        assert m.to_dense()[0, 0] == 3.0

    def test_matches_scipy(self):
        sp = pytest.importorskip("scipy.sparse")
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 10, 50)
        cols = rng.integers(0, 8, 50)
        vals = rng.normal(size=50)
        ours = COOMatrix.from_arrays((10, 8), rows, cols, vals).to_dense()
        theirs = sp.coo_matrix((vals, (rows, cols)), shape=(10, 8)).toarray()
        np.testing.assert_allclose(ours, theirs)


class TestCopy:
    def test_copy_is_deep(self):
        m = COOMatrix.from_arrays((2, 2), np.array([0]), np.array([1]), [3.0])
        c = m.copy()
        c.values[0] = 99.0
        assert m.values[0] == 3.0
