"""Unit tests for repro.similarity.minhash and repro.similarity.lsh."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sparse import CSRMatrix
from repro.similarity import LSHIndex, lsh_candidate_pairs, minhash_signatures
from repro.similarity.jaccard import jaccard_rows, pairwise_jaccard_dense
from repro.similarity.minhash import EMPTY_ROW_SENTINEL

from conftest import random_csr


class TestMinhashSignatures:
    def test_shape_and_dtype(self, paper_matrix):
        sig = minhash_signatures(paper_matrix, 16, seed=0)
        assert sig.shape == (6, 16)
        assert sig.dtype == np.int64

    def test_deterministic_for_seed(self, paper_matrix):
        a = minhash_signatures(paper_matrix, 8, seed=3)
        b = minhash_signatures(paper_matrix, 8, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, paper_matrix):
        a = minhash_signatures(paper_matrix, 8, seed=1)
        b = minhash_signatures(paper_matrix, 8, seed=2)
        assert not np.array_equal(a, b)

    def test_identical_rows_identical_signatures(self):
        dense = np.zeros((2, 10))
        dense[:, [1, 4, 7]] = 1.0
        sig = minhash_signatures(CSRMatrix.from_dense(dense), 32, seed=0)
        np.testing.assert_array_equal(sig[0], sig[1])

    def test_empty_row_sentinel(self):
        m = CSRMatrix.from_dense([[0.0, 0.0], [1.0, 0.0]])
        sig = minhash_signatures(m, 4, seed=0)
        assert (sig[0] == EMPTY_ROW_SENTINEL).all()
        assert (sig[1] != EMPTY_ROW_SENTINEL).all()

    def test_agreement_estimates_jaccard(self, rng):
        # Statistical property: fraction of agreeing positions ~ Jaccard.
        m = random_csr(rng, 12, 40, 0.25)
        sig = minhash_signatures(m, 512, seed=7)
        truth = pairwise_jaccard_dense(m)
        for i in range(0, 12, 3):
            for j in range(i + 1, 12, 3):
                est = float((sig[i] == sig[j]).mean())
                assert est == pytest.approx(truth[i, j], abs=0.12)

    def test_invalid_siglen(self, paper_matrix):
        with pytest.raises(ValidationError):
            minhash_signatures(paper_matrix, 0)

    def test_zero_rows(self):
        sig = minhash_signatures(CSRMatrix.empty((0, 5)), 4)
        assert sig.shape == (0, 4)


class TestLshCandidatePairs:
    def test_identical_rows_always_candidates(self):
        dense = np.zeros((4, 20))
        dense[0, [1, 5, 9]] = 1.0
        dense[2, [1, 5, 9]] = 1.0  # row 2 identical to row 0
        dense[1, [0]] = 1.0
        dense[3, [13]] = 1.0
        m = CSRMatrix.from_dense(dense)
        sig = minhash_signatures(m, 32, seed=0)
        pairs = lsh_candidate_pairs(sig, 2, seed=0)
        assert [0, 2] in pairs.tolist()

    def test_pairs_canonical_and_unique(self, rng):
        m = random_csr(rng, 40, 25, 0.2)
        sig = minhash_signatures(m, 32, seed=1)
        pairs = lsh_candidate_pairs(sig, 2, seed=1)
        assert (pairs[:, 0] < pairs[:, 1]).all()
        keys = pairs[:, 0] * 40 + pairs[:, 1]
        assert np.unique(keys).size == keys.size

    def test_bsize_must_divide_siglen(self, paper_matrix):
        sig = minhash_signatures(paper_matrix, 8, seed=0)
        with pytest.raises(ValidationError):
            lsh_candidate_pairs(sig, 3)

    def test_smaller_bsize_more_candidates(self, rng):
        m = random_csr(rng, 60, 30, 0.15)
        sig = minhash_signatures(m, 32, seed=2)
        few = lsh_candidate_pairs(sig, 8, seed=2, bucket_cap=None)
        many = lsh_candidate_pairs(sig, 1, seed=2, bucket_cap=None)
        assert many.shape[0] >= few.shape[0]

    def test_empty_rows_skipped(self):
        m = CSRMatrix.from_dense(np.zeros((5, 5)))
        sig = minhash_signatures(m, 8, seed=0)
        pairs = lsh_candidate_pairs(sig, 2, seed=0)
        assert pairs.shape[0] == 0

    def test_empty_rows_grouped_when_not_skipped(self):
        m = CSRMatrix.from_dense(np.zeros((3, 5)))
        sig = minhash_signatures(m, 8, seed=0)
        pairs = lsh_candidate_pairs(sig, 2, seed=0, skip_empty_sentinel=False)
        assert pairs.shape[0] == 3  # all pairs of the 3 empty rows

    def test_bucket_cap_limits_pairs(self):
        # 100 identical rows: uncapped -> 4950 pairs; capped -> far fewer.
        dense = np.zeros((100, 10))
        dense[:, [2, 5]] = 1.0
        m = CSRMatrix.from_dense(dense)
        sig = minhash_signatures(m, 8, seed=0)
        uncapped = lsh_candidate_pairs(sig, 2, seed=0, bucket_cap=None)
        capped = lsh_candidate_pairs(sig, 2, seed=0, bucket_cap=5)
        assert uncapped.shape[0] == 100 * 99 // 2
        assert 0 < capped.shape[0] < uncapped.shape[0]

    def test_single_row_no_pairs(self):
        m = CSRMatrix.from_dense([[1.0, 0.0]])
        sig = minhash_signatures(m, 8, seed=0)
        assert lsh_candidate_pairs(sig, 2).shape[0] == 0

    def test_non_2d_signatures_rejected(self):
        with pytest.raises(ValidationError):
            lsh_candidate_pairs(np.zeros(8, dtype=np.int64), 2)


class TestLSHIndex:
    def test_paper_matrix_finds_most_similar_pair(self, paper_matrix):
        index = LSHIndex(siglen=128, bsize=2, seed=0)
        pairs, sims = index.candidate_pairs(paper_matrix)
        pair_list = pairs.tolist()
        # (0, 4) with J = 2/3 is by far the most similar pair; with
        # bsize=2 the per-band hit probability is (2/3)^2 = 4/9 and there
        # are 64 bands, so the probability of missing it is ~1e-17.
        assert [0, 4] in pair_list
        idx = pair_list.index([0, 4])
        assert sims[idx] == pytest.approx(2 / 3)

    def test_similarities_are_exact(self, rng):
        m = random_csr(rng, 30, 20, 0.2)
        pairs, sims = LSHIndex(siglen=64, bsize=2, seed=1).candidate_pairs(m)
        for (i, j), s in zip(pairs.tolist(), sims):
            assert s == pytest.approx(jaccard_rows(m, i, j))

    def test_zero_similarity_pairs_dropped(self, rng):
        m = random_csr(rng, 30, 20, 0.2)
        _, sims = LSHIndex(siglen=64, bsize=1, seed=1).candidate_pairs(m)
        assert (sims > 0).all()

    def test_min_similarity_filter(self, rng):
        m = random_csr(rng, 40, 20, 0.2)
        _, sims = LSHIndex(siglen=64, bsize=1, seed=2, min_similarity=0.5).candidate_pairs(m)
        assert (sims >= 0.5).all()

    def test_recall_on_similar_pairs(self, rng):
        # LSH with paper parameters should find nearly all pairs with
        # similarity >= 0.5 (per-band prob 0.25, 64 bands -> miss ~1e-8).
        dense = np.zeros((30, 50))
        base = rng.random(50) < 0.3
        for i in range(30):
            row = base.copy()
            flips = rng.integers(0, 50, size=3)
            row[flips] = ~row[flips]
            dense[i] = row
        m = CSRMatrix.from_dense(dense.astype(float))
        truth = pairwise_jaccard_dense(m)
        want = {
            (i, j)
            for i in range(30)
            for j in range(i + 1, 30)
            if truth[i, j] >= 0.5
        }
        pairs, _ = LSHIndex(siglen=128, bsize=2, seed=0, bucket_cap=None).candidate_pairs(m)
        got = {tuple(p) for p in pairs.tolist()}
        assert want <= got

    def test_diagonal_matrix_produces_no_candidates(self):
        # Paper §4: for a scattered matrix LSH generates few or no pairs,
        # which automatically disables reordering.
        m = CSRMatrix.from_dense(np.eye(64))
        pairs, _ = LSHIndex(siglen=32, bsize=2, seed=0).candidate_pairs(m)
        assert pairs.shape[0] == 0


class TestPairsInBucketsBatching:
    """The size-batched bucket expansion must match a naive reference."""

    @staticmethod
    def _naive(order, starts, ends, bucket_cap):
        pairs = []
        for s, e in zip(starts.tolist(), ends.tolist()):
            members = order[s:e].tolist()
            size = len(members)
            if size < 2:
                continue
            if bucket_cap is None or size <= bucket_cap:
                for a in range(size):
                    for b in range(a + 1, size):
                        pairs.append((members[a], members[b]))
            else:
                for d in range(1, bucket_cap + 1):
                    for a in range(size - d):
                        pairs.append((members[a], members[a + d]))
        return sorted(pairs)

    @pytest.mark.parametrize("bucket_cap", [None, 3, 64])
    def test_matches_naive(self, rng, bucket_cap):
        from repro.similarity.lsh import _pairs_in_buckets

        order = rng.permutation(200).astype(np.int64)
        # Random bucket boundaries, including empty and size-1 buckets.
        cuts = np.sort(rng.choice(200, size=40, replace=False)).astype(np.int64)
        starts = np.concatenate([[0], cuts])
        ends = np.concatenate([cuts, [200]])
        chunks = _pairs_in_buckets(order, starts, ends, bucket_cap)
        got = sorted(
            map(tuple, np.concatenate(chunks).tolist() if chunks else [])
        )
        assert got == self._naive(order, starts, ends, bucket_cap)
