"""Additional GPU-model tests: SpMV spatial model details, cost-view
consistency, and executor behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.datasets import banded, staircase
from repro.gpu import GPUExecutor, P100
from repro.gpu.costmodel import CostModelConfig
from repro.reorder import ReorderConfig, build_plan
from repro.sparse import CSRMatrix, permute_csr_rows

from conftest import random_csr


class TestSpmvSpatialModel:
    def test_line_granularity(self, rng):
        # 32 fp32 elements per 128 B line: a row touching elements 0..31
        # costs one line, 0..32 costs two.
        one_line = CSRMatrix.from_dense(
            np.concatenate([np.ones((1, 32)), np.zeros((1, 32))], axis=1)
        )
        two_lines = CSRMatrix.from_dense(np.ones((1, 33)) * 1.0)
        # Pad to same n_cols for comparability.
        two_lines = CSRMatrix.from_arrays(
            (1, 64), [0, 33], np.arange(33), np.ones(33)
        )
        ex = GPUExecutor(cache_mode="exact")
        a = ex.spmv_cost(one_line).bytes_breakdown["x_sparse"]
        b = ex.spmv_cost(two_lines).bytes_breakdown["x_sparse"]
        assert b == 2 * a

    def test_banded_vs_shuffled(self, rng):
        # A banded matrix reads overlapping vector lines row to row; a row
        # shuffle destroys that.  The vector must be much larger than the
        # modelled L2 (here 16K columns = 512 lines vs a 64-line cache) and
        # launch overhead is zeroed so pure traffic decides.
        m = banded(16384, 2, seed=0)
        shuffled = permute_csr_rows(m, rng.permutation(16384).astype(np.int64))
        ex = GPUExecutor(
            P100.with_overrides(l2_bytes=8 * 1024),
            config=CostModelConfig(launch_overhead_s=0.0),
            cache_mode="exact",
        )
        assert ex.spmv_cost(m).time_s < ex.spmv_cost(shuffled).time_s

    def test_k_is_one(self, rng):
        cost = GPUExecutor().spmv_cost(random_csr(rng, 50, 50, 0.1))
        assert cost.k == 1

    def test_cusparse_variant_no_block_dedup(self):
        # With one row per block, identical adjacent rows cannot share
        # line fetches at the block level (only through L2).
        dense = np.zeros((64, 2048))
        dense[:, :8] = 1.0  # all rows identical
        m = CSRMatrix.from_dense(dense)
        ex = GPUExecutor(
            P100.with_overrides(l2_bytes=4096), cache_mode="exact",
            config=CostModelConfig(l2_utilization=0.001),
        )
        rowwise = ex.spmv_cost(m, "rowwise")
        cusp = ex.spmv_cost(m, "cusparse")
        assert cusp.bytes_breakdown["x_sparse"] >= rowwise.bytes_breakdown["x_sparse"]


class TestCostViewConsistency:
    def test_round2_changes_remainder_stream_cost(self, rng):
        # A plan with round-2 reordering must produce a remainder cost at
        # most that of the unreordered remainder (on a matrix with
        # remainder similarity to exploit).
        from repro.datasets import hidden_clusters

        m = hidden_clusters(96, 8, 2048, 16, noise=0.2, seed=1)
        ex = GPUExecutor(P100.with_overrides(l2_bytes=64 * 1024))
        plan_r2 = build_plan(
            m, ReorderConfig(panel_height=16, force_round1=False, force_round2=True)
        )
        plan_no = build_plan(
            m, ReorderConfig(panel_height=16, force_round1=False, force_round2=False)
        )
        t_r2 = ex.spmm_cost(plan_r2.cost_view(), 512, "aspt").time_s
        t_no = ex.spmm_cost(plan_no.cost_view(), 512, "aspt").time_s
        assert t_r2 <= t_no * 1.001

    def test_cost_view_dense_parts_shared(self, rng):
        m = random_csr(rng, 40, 30, 0.2)
        plan = build_plan(m, ReorderConfig(panel_height=8))
        view = plan.cost_view()
        assert view.panel_dense_cols is plan.tiled.panel_dense_cols
        assert view.spec is plan.tiled.spec


class TestExecutorEdgeCases:
    def test_exact_and_approx_agree_when_everything_fits(self, rng):
        # L2 big enough for all rows: both cache modes see only cold misses.
        m = random_csr(rng, 100, 50, 0.1)
        exact = GPUExecutor(cache_mode="exact").spmm_cost(m, 512, "rowwise")
        approx = GPUExecutor(cache_mode="approx").spmm_cost(m, 512, "rowwise")
        assert exact.bytes_breakdown["x_sparse"] == pytest.approx(
            approx.bytes_breakdown["x_sparse"], rel=0.25
        )

    def test_staircase_has_no_x_reuse_for_spmm(self):
        m = staircase(256, 4, seed=0)
        cost = GPUExecutor(cache_mode="exact").spmm_cost(m, 512, "rowwise")
        # Every column unique: zero hits regardless of cache size.
        assert cost.x_hit_rate == 0.0

    def test_l2_time_can_dominate(self):
        # A matrix whose X rows all hit in L2 with very many re-reads: the
        # L2-bandwidth term must bound the time from below.
        dense = np.zeros((512, 64))
        dense[:, :16] = 1.0  # 512 identical rows, X fits trivially
        m = CSRMatrix.from_dense(dense)
        device = P100.with_overrides(l2_bandwidth=1e9)  # cripple L2
        slow = GPUExecutor(device, cache_mode="exact").spmm_cost(m, 512, "rowwise")
        fast = GPUExecutor(P100, cache_mode="exact").spmm_cost(m, 512, "rowwise")
        assert slow.time_s > fast.time_s

    def test_speedup_over_is_inverse(self, rng):
        m = random_csr(rng, 64, 64, 0.1)
        ex = GPUExecutor()
        a = ex.spmm_cost(m, 512, "rowwise")
        b = ex.spmm_cost(m, 512, "cusparse")
        assert a.speedup_over(b) == pytest.approx(1.0 / b.speedup_over(a))
