"""Unit tests for repro.sparse.ops."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.errors import ValidationError
from repro.sparse import (
    CSRMatrix,
    extract_columns,
    extract_rows,
    hstack_csr,
    permute_csr_columns,
    permute_csr_rows,
    transpose_csr,
    vstack_csr,
)

from conftest import random_csr


class TestPermuteRows:
    def test_matches_dense_permutation(self, rng):
        m = random_csr(rng, 12, 9, 0.25)
        order = rng.permutation(12)
        got = permute_csr_rows(m, order)
        np.testing.assert_allclose(got.to_dense(), m.to_dense()[order])

    def test_identity_is_noop(self, paper_matrix):
        got = permute_csr_rows(paper_matrix, np.arange(6))
        assert got.allclose(paper_matrix)

    def test_paper_swap_rows_1_and_4(self, paper_matrix):
        # Fig 4a: exchange rows 1 and 4.
        order = np.array([0, 4, 2, 3, 1, 5])
        got = permute_csr_rows(paper_matrix, order)
        assert got.row_cols(1).tolist() == [0, 3, 4]
        assert got.row_cols(4).tolist() == [1, 3, 5]

    def test_preserves_canonical_form(self, rng):
        m = random_csr(rng, 20, 20, 0.1)
        got = permute_csr_rows(m, rng.permutation(20))
        got.validate()

    def test_invalid_permutation_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            permute_csr_rows(paper_matrix, np.array([0, 0, 1, 2, 3, 4]))

    def test_empty_matrix(self):
        m = CSRMatrix.empty((3, 3))
        got = permute_csr_rows(m, np.array([2, 0, 1]))
        assert got.nnz == 0

    def test_inverse_recovers_original(self, rng):
        from repro.util.arrayops import rank_of_permutation

        m = random_csr(rng, 15, 10, 0.2)
        order = rng.permutation(15)
        back = permute_csr_rows(permute_csr_rows(m, order), rank_of_permutation(order))
        assert back.allclose(m)


class TestPermuteColumns:
    def test_matches_dense(self, rng):
        m = random_csr(rng, 10, 7, 0.3)
        col_map = rng.permutation(7)
        got = permute_csr_columns(m, col_map)
        dense = np.zeros_like(m.to_dense())
        dense[:, col_map] = 0  # placate linters; real check below
        expected = np.zeros((10, 7))
        orig = m.to_dense()
        for old in range(7):
            expected[:, col_map[old]] = orig[:, old]
        np.testing.assert_allclose(got.to_dense(), expected)

    def test_restores_canonical_form(self, rng):
        m = random_csr(rng, 10, 10, 0.3)
        got = permute_csr_columns(m, rng.permutation(10))
        got.validate()


class TestTranspose:
    def test_matches_dense(self, rng):
        m = random_csr(rng, 9, 14, 0.2)
        np.testing.assert_allclose(transpose_csr(m).to_dense(), m.to_dense().T)

    def test_empty(self):
        t = transpose_csr(CSRMatrix.empty((4, 6)))
        assert t.shape == (6, 4) and t.nnz == 0


class TestExtractRows:
    def test_subset(self, paper_matrix):
        sub = extract_rows(paper_matrix, np.array([4, 0]))
        assert sub.shape == (2, 6)
        assert sub.row_cols(0).tolist() == [0, 3, 4]
        assert sub.row_cols(1).tolist() == [0, 4]

    def test_repetition_allowed(self, paper_matrix):
        sub = extract_rows(paper_matrix, np.array([0, 0]))
        assert sub.nnz == 4

    def test_out_of_range_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            extract_rows(paper_matrix, np.array([6]))

    def test_empty_selection(self, paper_matrix):
        sub = extract_rows(paper_matrix, np.array([], dtype=np.int64))
        assert sub.shape == (0, 6) and sub.nnz == 0


class TestExtractColumns:
    def test_subset_relabels(self, paper_matrix):
        sub = extract_columns(paper_matrix, np.array([4, 0]))
        # Column 4 -> new column 0, column 0 -> new column 1.
        assert sub.shape == (6, 2)
        dense = sub.to_dense()
        orig = paper_matrix.to_dense()
        np.testing.assert_allclose(dense[:, 0], orig[:, 4])
        np.testing.assert_allclose(dense[:, 1], orig[:, 0])

    def test_duplicates_rejected(self, paper_matrix):
        with pytest.raises(ShapeError):
            extract_columns(paper_matrix, np.array([0, 0]))

    def test_drops_other_entries(self, paper_matrix):
        sub = extract_columns(paper_matrix, np.array([4]))
        assert sub.nnz == 3  # rows 0, 2, 4 contain column 4


class TestStacking:
    def test_vstack_matches_dense(self, rng):
        a = random_csr(rng, 4, 6, 0.4)
        b = random_csr(rng, 3, 6, 0.4)
        got = vstack_csr([a, b])
        np.testing.assert_allclose(
            got.to_dense(), np.vstack([a.to_dense(), b.to_dense()])
        )

    def test_vstack_mismatch_rejected(self, rng):
        with pytest.raises(ShapeError):
            vstack_csr([random_csr(rng, 3, 4, 0.5), random_csr(rng, 3, 5, 0.5)])

    def test_vstack_empty_list_rejected(self):
        with pytest.raises(ShapeError):
            vstack_csr([])

    def test_hstack_matches_dense(self, rng):
        a = random_csr(rng, 5, 3, 0.4)
        b = random_csr(rng, 5, 4, 0.4)
        got = hstack_csr([a, b])
        np.testing.assert_allclose(
            got.to_dense(), np.hstack([a.to_dense(), b.to_dense()])
        )

    def test_hstack_mismatch_rejected(self, rng):
        with pytest.raises(ShapeError):
            hstack_csr([random_csr(rng, 3, 4, 0.5), random_csr(rng, 4, 4, 0.5)])
