"""Unit tests for repro.sparse.csc and repro.sparse.conversions."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    coo_to_csr,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    dense_to_csr,
)

from conftest import random_csr


class TestCSC:
    def test_from_arrays_and_col_access(self):
        # 3x2 matrix: col 0 has rows {0, 2}, col 1 has row {1}
        m = CSCMatrix.from_arrays((3, 2), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        rows, vals = m.col(0)
        assert rows.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 2.0]
        assert m.col_lengths().tolist() == [2, 1]

    def test_canonicalises_unsorted_columns(self):
        m = CSCMatrix.from_arrays((3, 1), [0, 2], [2, 0], [1.0, 2.0])
        assert m.rowidx.tolist() == [0, 2]

    def test_col_out_of_range(self):
        m = CSCMatrix.empty((2, 2))
        with pytest.raises(IndexError):
            m.col(2)

    def test_validate_empty(self):
        CSCMatrix.empty((3, 4)).validate()

    def test_to_dense(self):
        m = CSCMatrix.from_arrays((2, 2), [0, 1, 2], [1, 0], [5.0, 6.0])
        np.testing.assert_allclose(m.to_dense(), [[0.0, 6.0], [5.0, 0.0]])

    def test_validate_rejects_bad_colptr(self):
        m = CSCMatrix((2, 2), np.array([1, 1, 1]), np.empty(0, dtype=np.int64), np.empty(0))
        with pytest.raises(FormatError):
            m.validate()


class TestConversionRoundtrips:
    def test_csr_csc_roundtrip(self, rng):
        m = random_csr(rng, 15, 12, 0.15)
        back = csc_to_csr(csr_to_csc(m))
        assert back.allclose(m)

    def test_csr_csc_dense_equivalence(self, rng):
        m = random_csr(rng, 10, 9, 0.2)
        np.testing.assert_allclose(csr_to_csc(m).to_dense(), m.to_dense())

    def test_coo_to_csr_sums_duplicates(self):
        coo = COOMatrix.from_arrays(
            (2, 2), np.array([0, 0, 1]), np.array([1, 1, 0]), [1.0, 2.0, 3.0]
        )
        csr = coo_to_csr(coo)
        assert csr.nnz == 2
        assert csr.to_dense()[0, 1] == 3.0

    def test_coo_csr_coo_roundtrip(self, rng):
        m = random_csr(rng, 8, 8, 0.3)
        coo = csr_to_coo(m)
        assert coo_to_csr(coo).allclose(m)

    def test_empty_conversions(self):
        e = CSRMatrix.empty((3, 3))
        assert csr_to_csc(e).nnz == 0
        assert csc_to_csr(csr_to_csc(e)).nnz == 0
        assert coo_to_csr(COOMatrix.empty((3, 3))).nnz == 0

    def test_dense_to_csr(self):
        d = np.eye(3)
        m = dense_to_csr(d)
        np.testing.assert_allclose(m.to_dense(), d)

    def test_csc_matches_scipy(self, rng):
        sp = pytest.importorskip("scipy.sparse")
        m = random_csr(rng, 25, 18, 0.1)
        ours = csr_to_csc(m)
        theirs = sp.csr_matrix(m.to_dense()).tocsc()
        np.testing.assert_array_equal(ours.colptr, theirs.indptr)
        np.testing.assert_array_equal(ours.rowidx, theirs.indices)
        np.testing.assert_allclose(ours.values, theirs.data)

    def test_transpose_shape(self, rng):
        m = random_csr(rng, 7, 13, 0.2)
        t = m.transpose()
        assert t.shape == (13, 7)
