"""Unit tests for repro.gpu.occupancy."""

import pytest

from repro.errors import ValidationError
from repro.gpu import P100, occupancy


class TestOccupancy:
    def test_rowwise_kernel_geometry_saturates(self):
        # The modelled row-wise kernel: 4 warps (128 threads), no shared
        # memory, typical register budget.  Must reach high occupancy —
        # this licenses the cost model's bandwidth-saturation assumption.
        result = occupancy(P100, 128, registers_per_thread=32)
        assert result.occupancy >= 0.75
        assert result.blocks_per_sm >= 8

    def test_aspt_dense_phase_geometry(self):
        # ASpT dense phase stages a 128-column x 32-wide fp32 tile
        # (16 KiB) in shared memory per block.
        result = occupancy(
            P100, 128, registers_per_thread=32, shared_bytes_per_block=16 * 1024
        )
        assert result.blocks_per_sm == 4  # 64 KiB / 16 KiB
        assert result.limiter == "shared_memory"
        assert result.occupancy >= 0.25

    def test_threads_limiter(self):
        result = occupancy(P100, 1024, registers_per_thread=16)
        assert result.limiter == "threads"
        assert result.blocks_per_sm == 2

    def test_register_limiter(self):
        result = occupancy(P100, 256, registers_per_thread=255)
        assert result.limiter == "registers"
        assert result.blocks_per_sm == 1

    def test_blocks_limiter_tiny_blocks(self):
        result = occupancy(P100, 32, registers_per_thread=16)
        assert result.limiter == "blocks"
        assert result.blocks_per_sm == P100.max_blocks_per_sm

    def test_occupancy_bounded(self):
        result = occupancy(P100, 256)
        assert 0.0 < result.occupancy <= 1.0
        assert result.active_warps == result.blocks_per_sm * 8

    def test_non_warp_multiple_rejected(self):
        with pytest.raises(ValidationError):
            occupancy(P100, 100)

    def test_oversized_block_rejected(self):
        with pytest.raises(ValidationError):
            occupancy(P100, 4096)

    def test_bad_args(self):
        with pytest.raises(ValidationError):
            occupancy(P100, 0)
        with pytest.raises(ValidationError):
            occupancy(P100, 128, shared_bytes_per_block=-1)
