"""Unit tests for the streaming subsystem: deltas, streams, incremental
replanning, session refresh and the plan-store staleness regression."""

import numpy as np
import pytest

from repro.datasets import edge_stream, hidden_clusters, stream_corpus
from repro.errors import ValidationError
from repro.kernels import KernelSession
from repro.planstore import PlanStore
from repro.reorder import ReorderConfig, build_plan
from repro.sparse import COOMatrix, CSRMatrix
from repro.streaming import (
    DeltaBatch,
    LshState,
    StreamingPlan,
    apply_delta,
    split_into_deltas,
)

from conftest import random_csr

CFG = ReorderConfig(siglen=16, bsize=4, panel_height=8, force_round1=True)


def small_matrix():
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 3.0, 0.0, 0.0],
            [4.0, 0.0, 0.0, 5.0],
        ]
    )
    return CSRMatrix.from_dense(dense)


class TestDeltaBatch:
    def test_add_accumulates_and_inserts(self):
        m = small_matrix()
        delta = DeltaBatch(
            rows=np.array([0, 1]), cols=np.array([0, 0]),
            values=np.array([10.0, 7.0]),
        )
        out = delta.apply_to(m)
        assert out.to_dense()[0, 0] == 11.0  # accumulated onto existing
        assert out.to_dense()[1, 0] == 7.0  # inserted
        assert out.nnz == m.nnz + 1

    def test_add_grows_rows(self):
        m = small_matrix()
        delta = DeltaBatch(
            rows=np.array([4]), cols=np.array([1]), values=np.array([2.5]),
            new_rows=2,
        )
        out = delta.apply_to(m)
        assert out.shape == (5, 4)
        assert out.to_dense()[4, 1] == 2.5
        assert out.to_dense()[3].sum() == 0.0  # appended-but-empty row

    def test_set_overwrites_in_place(self):
        m = small_matrix()
        delta = DeltaBatch(
            rows=np.array([2]), cols=np.array([3]), values=np.array([-1.0]),
            mode="set",
        )
        out = delta.apply_to(m)
        assert out.to_dense()[2, 3] == -1.0
        np.testing.assert_array_equal(out.rowptr, m.rowptr)
        np.testing.assert_array_equal(out.colidx, m.colidx)

    def test_set_missing_entry_rejected(self):
        m = small_matrix()
        delta = DeltaBatch(
            rows=np.array([1]), cols=np.array([0]), values=np.array([1.0]),
            mode="set",
        )
        with pytest.raises(ValidationError):
            delta.apply_to(m)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rows=[0], cols=[0, 1], values=[1.0]),  # ragged
            dict(rows=[-1], cols=[0], values=[1.0]),  # negative index
            dict(rows=[0], cols=[0], values=[1.0], mode="replace"),  # bad mode
            dict(rows=[0], cols=[0], values=[1.0], mode="set", new_rows=1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            DeltaBatch(
                rows=np.asarray(kwargs.pop("rows")),
                cols=np.asarray(kwargs.pop("cols")),
                values=np.asarray(kwargs.pop("values"), dtype=np.float64),
                **kwargs,
            )

    def test_dirty_and_touched_rows(self):
        delta = DeltaBatch(
            rows=np.array([0, 2, 5, 5]), cols=np.zeros(4, dtype=np.int64),
            values=np.ones(4), new_rows=2,
        )
        np.testing.assert_array_equal(delta.touched_rows(), [0, 2, 5])
        np.testing.assert_array_equal(delta.dirty_existing_rows(4), [0, 2])

    def test_split_validation(self):
        with pytest.raises(ValidationError):
            split_into_deltas(small_matrix(), 0)


class TestStreams:
    def test_edge_stream_timestamps_and_replay(self):
        m = random_csr(np.random.default_rng(0), 20, 12, density=0.2)
        stream = edge_stream(m, 5, name="s", seed=1, start_time=100.0, dt=2.0)
        assert [d.timestamp for d in stream.deltas] == [
            100.0, 102.0, 104.0, 106.0, 108.0
        ]
        *_, last = stream.matrices()
        np.testing.assert_array_equal(last.values, stream.final.values)
        np.testing.assert_array_equal(last.colidx, stream.final.colidx)

    def test_edge_stream_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            edge_stream(small_matrix(), 2, dt=0.0)

    def test_stream_corpus_is_deterministic(self):
        a, b = stream_corpus(seed=3, n_batches=4), stream_corpus(seed=3, n_batches=4)
        assert [s.name for s in a] == [s.name for s in b]
        for sa, sb in zip(a, b):
            assert sa.n_events == sb.n_events
            np.testing.assert_array_equal(sa.final.colidx, sb.final.colidx)


class TestApplyDelta:
    def test_replan_reason_dirty_fraction(self):
        m = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=2)
        plan = build_plan(m, CFG)
        state = LshState.build(m, CFG)
        rng = np.random.default_rng(1)
        k = m.n_rows  # every row dirty
        delta = DeltaBatch(
            rows=np.arange(k, dtype=np.int64),
            cols=rng.integers(0, m.n_cols, size=k),
            values=rng.normal(size=k),
        )
        update = apply_delta(plan, delta, CFG, state=state)
        assert update.report.mode == "replanned"
        assert "dirty fraction" in update.report.reason

    def test_replan_reason_missing_state(self):
        m = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=2)
        plan = build_plan(m, CFG)
        delta = DeltaBatch(
            rows=np.array([0]), cols=np.array([0]), values=np.array([1.0])
        )
        update = apply_delta(plan, delta, CFG, state=None)
        assert update.report.mode == "replanned"
        assert "no incremental LSH state" in update.report.reason
        # The replan hands back a fresh state so the next update can patch.
        assert update.state is not None
        follow = apply_delta(update.plan, delta, CFG, state=update.state)
        assert follow.report.patched

    def test_patch_writes_through_the_plan_cache(self):
        m = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=2)
        store = PlanStore()
        plan = build_plan(m, CFG, cache=store)
        state = LshState.build(m, CFG)
        delta = DeltaBatch(
            rows=np.array([0]), cols=np.array([1]), values=np.array([1.0])
        )
        update = apply_delta(plan, delta, CFG, state=state, cache=store)
        assert update.report.patched
        mutated = delta.apply_to(m)
        assert store.get(store.key_for(mutated, CFG)) is not None

    def test_report_carries_timestamp(self):
        m = small_matrix()
        plan = build_plan(m, ReorderConfig(panel_height=2))
        delta = DeltaBatch(
            rows=np.array([0]), cols=np.array([0]), values=np.array([1.0]),
            timestamp=42.5,
        )
        update = apply_delta(plan, delta, ReorderConfig(panel_height=2))
        assert update.report.timestamp == 42.5
        assert update.matrix.to_dense()[0, 0] == 2.0


class TestStreamingPlan:
    def test_revision_counts_updates(self):
        m = random_csr(np.random.default_rng(4), 24, 16, density=0.15)
        base, deltas = split_into_deltas(m, 3, seed=0, grow_rows=False)
        sp = StreamingPlan(base, CFG)
        assert sp.revision == 0
        for delta in deltas:
            sp.apply(delta)
        assert sp.revision == 3
        assert len(sp.reports) == 3
        np.testing.assert_array_equal(sp.matrix.values, m.values)

    def test_converges_to_whole_build(self):
        m = random_csr(np.random.default_rng(5), 24, 16, density=0.15)
        base, deltas = split_into_deltas(m, 4, seed=1, grow_rows=True)
        sp = StreamingPlan(base, CFG)
        for delta in deltas:
            sp.apply(delta)
        fresh = build_plan(m, CFG)
        x = np.random.default_rng(6).normal(size=(m.n_cols, 4))
        np.testing.assert_array_equal(sp.plan.spmm(x), fresh.spmm(x))


class TestSessionRefresh:
    def test_refresh_tracks_patched_plan(self):
        m = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=3)
        plan = build_plan(m, CFG)
        state = LshState.build(m, CFG)
        session = KernelSession(plan)
        x = np.random.default_rng(7).normal(size=(m.n_cols, 4))
        session.run(x)
        delta = DeltaBatch(
            rows=np.array([1]), cols=np.array([2]), values=np.array([3.0])
        )
        update = apply_delta(plan, delta, CFG, state=state)
        session.refresh(update)  # accepts the PlanUpdate directly
        fresh = build_plan(delta.apply_to(m), CFG)
        np.testing.assert_array_equal(session.run(x), fresh.spmm(x))
        session.close()

    def test_refresh_handles_row_growth(self):
        m = small_matrix()
        session = KernelSession(m)
        x = np.ones((m.n_cols, 2))
        assert session.run(x).shape == (3, 2)
        delta = DeltaBatch(
            rows=np.array([4]), cols=np.array([0]), values=np.array([1.0]),
            new_rows=2,
        )
        grown = delta.apply_to(m)
        session.refresh(grown)
        out = session.run(x)
        assert out.shape == (5, 2)
        np.testing.assert_array_equal(out[4], [1.0, 1.0])
        session.close()


class TestSessionMemoStaleness:
    def test_set_delta_gets_a_fresh_session(self):
        """Regression: the session memo was keyed on the pattern-only plan
        key, so a value-only (``mode="set"``) delta kept serving the old
        values through the memoised session."""
        m = small_matrix()
        store = PlanStore()
        cfg = ReorderConfig(panel_height=2)
        x = np.eye(m.n_cols)
        before = store.session(m, cfg).run(x).copy()
        delta = DeltaBatch(
            rows=np.array([0]), cols=np.array([0]), values=np.array([9.0]),
            mode="set",
        )
        mutated = delta.apply_to(m)  # identical pattern, new values
        after = store.session(mutated, cfg).run(x)
        np.testing.assert_array_equal(before[0, 0], 1.0)
        np.testing.assert_array_equal(after[0, 0], 9.0)

    def test_invalidate_sessions_by_matrix_and_wholesale(self):
        store = PlanStore()
        cfg = ReorderConfig(panel_height=2)
        a = small_matrix()
        b = COOMatrix.from_arrays(
            (2, 2), np.array([0, 1]), np.array([0, 1]), np.array([1.0, 2.0])
        ).to_csr()
        store.session(a, cfg)
        store.session(b, cfg)
        assert store.invalidate_sessions(a, cfg) == 1
        assert store.invalidate_sessions(a, cfg) == 0  # already gone
        assert store.invalidate_sessions() == 1  # b, wholesale clear
