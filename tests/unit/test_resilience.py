"""Unit tests for the resilience primitives.

Covers the deterministic fault injector, cooperative deadlines, bounded
IO retry, the degradation ladder's rung derivation, the resilience
policy, and the error-type/exit-code additions they rely on.
"""

import warnings

import pytest

from repro.errors import (
    EXIT_DATA,
    EXIT_INTERRUPTED,
    EXIT_IO,
    EXIT_TIMEOUT,
    BackendUnavailable,
    CorruptStoreError,
    DegradedExecution,
    ReproIOError,
    TimeoutExceeded,
    WorkspaceExhausted,
    exit_code_for,
)
from repro.reorder import ReorderConfig
from repro.resilience import (
    FAULT_SITES,
    Deadline,
    FaultInjector,
    ResiliencePolicy,
    active_injector,
    fault_point,
    ladder_rungs,
    retry_io,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestDeadline:
    def test_not_expired_within_budget(self):
        clock = FakeClock()
        d = Deadline.after(10.0, clock=clock)
        clock.t = 9.9
        assert not d.expired()
        d.check("stage")  # no raise
        assert d.remaining() == pytest.approx(0.1)

    def test_expired_raises_with_stage_and_budget(self):
        clock = FakeClock()
        d = Deadline.after(5.0, clock=clock)
        clock.t = 5.0
        assert d.expired()
        with pytest.raises(TimeoutExceeded) as exc_info:
            d.check("cluster1")
        assert exc_info.value.stage == "cluster1"
        assert exc_info.value.budget_s == 5.0
        assert "cluster1" in str(exc_info.value)

    def test_zero_budget_expires_immediately(self):
        d = Deadline.after(0.0, clock=FakeClock())
        with pytest.raises(TimeoutExceeded):
            d.check()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestFaultInjector:
    def test_rate_zero_never_fires(self):
        inj = FaultInjector(rate=0.0, seed=1)
        for _ in range(200):
            inj.check("io.read")
        assert inj.fired["io.read"] == 0
        assert inj.checked["io.read"] == 200

    def test_rate_one_always_fires(self):
        inj = FaultInjector(rate=1.0, seed=1)
        with pytest.raises(ReproIOError):
            inj.check("io.read")
        assert inj.fired["io.read"] == 1

    def test_same_seed_same_pattern(self):
        def pattern(seed):
            inj = FaultInjector(rate=0.3, seed=seed)
            fired = []
            for n in range(100):
                try:
                    inj.check("planstore.read")
                except CorruptStoreError:
                    fired.append(n)
            return fired

        assert pattern(42) == pattern(42)
        assert pattern(42) != pattern(43)

    def test_empirical_rate_near_nominal(self):
        inj = FaultInjector(rate=0.2, seed=7)
        fired = 0
        for _ in range(2000):
            try:
                inj.check("io.read")
            except ReproIOError:
                fired += 1
        assert 0.15 < fired / 2000 < 0.25

    def test_sites_filter_restricts_firing(self):
        inj = FaultInjector(rate=1.0, seed=1, sites=["io.read"])
        inj.check("planstore.read")  # filtered out: no raise
        with pytest.raises(ReproIOError):
            inj.check("io.read")

    def test_per_site_rate_overrides(self):
        inj = FaultInjector(rate=1.0, seed=1, rates={"io.read": 0.0})
        inj.check("io.read")  # overridden to 0
        with pytest.raises(CorruptStoreError):
            inj.check("planstore.read")

    def test_max_faults_caps_total(self):
        inj = FaultInjector(rate=1.0, seed=1, max_faults=2)
        raised = 0
        for _ in range(10):
            try:
                inj.check("io.read")
            except ReproIOError:
                raised += 1
        assert raised == 2

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(sites=["not.a.site"])
        with pytest.raises(ValueError):
            FaultInjector(rates={"not.a.site": 0.5})

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)

    def test_every_site_raises_its_characteristic_type(self):
        expected = {
            "io.read": ReproIOError,
            "planstore.read": CorruptStoreError,
            "planstore.write": ReproIOError,
            "clustering.minhash": TimeoutExceeded,
            "clustering.cluster": TimeoutExceeded,
            "workspace.take": WorkspaceExhausted,
            "session.run": WorkspaceExhausted,
            "backend.compile": BackendUnavailable,
            "streaming.update": TimeoutExceeded,
            "serve.pool_evict": ReproIOError,
            "serve.accept": ReproIOError,
        }
        assert set(expected) == set(FAULT_SITES)
        for site, exc_type in expected.items():
            inj = FaultInjector(rate=1.0, seed=1)
            with pytest.raises(exc_type):
                inj.check(site)

    def test_install_uninstall_and_conflict(self):
        assert active_injector() is None
        fault_point("io.read")  # disabled path: no-op
        with FaultInjector(rate=0.0, seed=1) as inj:
            assert active_injector() is inj
            fault_point("io.read")
            assert inj.checked["io.read"] == 1
            with pytest.raises(RuntimeError):
                FaultInjector(rate=0.0, seed=2).install()
        assert active_injector() is None

    def test_summary_reports_checked_and_fired(self):
        inj = FaultInjector(rate=1.0, seed=1, sites=["io.read"])
        inj.check("planstore.read")
        with pytest.raises(ReproIOError):
            inj.check("io.read")
        assert inj.summary() == {
            "io.read": (1, 1),
            "planstore.read": (1, 0),
        }


class TestRetryIO:
    def test_transient_error_retried_then_succeeds(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert (
            retry_io(flaky, attempts=3, backoff_s=0.01, sleep=sleeps.append, jitter=0.0)
            == "ok"
        )
        assert calls["n"] == 3
        assert sleeps == [0.01, 0.02]  # fixed exponential schedule with jitter off

    def test_full_jitter_stays_within_exponential_ceiling(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise OSError("transient")
            return "ok"

        assert (
            retry_io(flaky, attempts=4, backoff_s=0.01, sleep=sleeps.append,
                     label="jit")
            == "ok"
        )
        assert len(sleeps) == 3
        for attempt, slept in enumerate(sleeps):
            assert 0.0 <= slept <= 0.01 * 2**attempt

    def test_jitter_is_deterministic_not_random(self):
        from repro.resilience.retry import _jitter_fraction

        a = _jitter_fraction("planstore/x.bin", 1, 7)
        b = _jitter_fraction("planstore/x.bin", 1, 7)
        assert a == b
        assert 0.0 <= a < 1.0
        assert _jitter_fraction("planstore/x.bin", 2, 7) != a

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            retry_io(lambda: None, jitter=1.5)

    def test_sleep_histogram_observes_real_delays(self):
        from repro.observability.metrics import METRICS

        hist = METRICS.histogram(
            "retry.sleep_s", "seconds slept between IO retry attempts"
        )
        before = hist.count
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise OSError("transient")
            return "ok"

        retry_io(flaky, attempts=2, backoff_s=0.01, sleep=lambda _: None)
        assert hist.count == before + 1

    def test_exhausted_attempts_reraise_last(self):
        def always():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            retry_io(always, attempts=2, backoff_s=0.0, sleep=lambda _: None)

    def test_non_transient_errors_fail_immediately(self):
        calls = {"n": 0}

        def missing():
            calls["n"] += 1
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            retry_io(missing, attempts=5, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_unlisted_exception_propagates(self):
        def boom():
            raise ValueError("not io")

        with pytest.raises(ValueError):
            retry_io(boom, attempts=3, sleep=lambda _: None)

    def test_attempts_validated(self):
        with pytest.raises(ValueError):
            retry_io(lambda: None, attempts=0)


class TestLadderRungs:
    def test_full_ladder_for_default_config(self):
        config = ReorderConfig(panel_height=8)
        rungs = ladder_rungs(config)
        assert [label for label, _ in rungs] == [
            "full", "round1-only", "identity", "untiled-csr",
        ]
        assert rungs[0][1] is config
        assert rungs[1][1].force_round2 is False
        assert rungs[2][1].force_round1 is False
        floor = rungs[3][1]
        assert floor.dense_threshold == config.panel_height + 1

    def test_redundant_rungs_dropped(self):
        config = ReorderConfig(
            panel_height=8, force_round1=False, force_round2=False
        )
        rungs = ladder_rungs(config)
        assert [label for label, _ in rungs] == ["full", "untiled-csr"]

    def test_round2_off_drops_round1_only(self):
        config = ReorderConfig(panel_height=8, force_round2=False)
        rungs = ladder_rungs(config)
        assert [label for label, _ in rungs] == ["full", "identity", "untiled-csr"]


class TestResiliencePolicy:
    def test_defaults(self):
        policy = ResiliencePolicy()
        assert policy.deadline_s is None
        assert policy.ladder is True
        assert policy.new_deadline() is None

    def test_new_deadline_fresh_per_call(self):
        policy = ResiliencePolicy(deadline_s=100.0)
        a, b = policy.new_deadline(), policy.new_deadline()
        assert a is not b
        assert a.budget_s == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_s=-1.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(io_attempts=0)


class TestErrorTaxonomy:
    def test_exit_codes_for_new_types(self):
        assert exit_code_for(TimeoutExceeded("t")) == EXIT_TIMEOUT
        assert exit_code_for(KeyboardInterrupt()) == EXIT_INTERRUPTED
        assert exit_code_for(ReproIOError("io")) == EXIT_IO
        assert exit_code_for(CorruptStoreError("c")) == EXIT_DATA

    def test_workspace_exhausted_is_memory_error(self):
        # The kernel-session fallback catches it; callers that only know
        # MemoryError still handle it correctly.
        assert issubclass(WorkspaceExhausted, MemoryError)

    def test_repro_io_error_is_os_error(self):
        assert issubclass(ReproIOError, OSError)

    def test_degraded_execution_is_warning(self):
        assert issubclass(DegradedExecution, UserWarning)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warnings.warn("degraded", DegradedExecution)
        assert len(caught) == 1
