"""Unit tests for repro.gpu.trace, costmodel and executor."""

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.errors import ConfigError
from repro.gpu import (
    CostModelConfig,
    GPUExecutor,
    P100,
    block_access_stream,
    paper_example_access_counts,
)
from repro.gpu.trace import unique_block_column_count
from repro.sparse import CSRMatrix, permute_csr_rows

from conftest import random_csr


class TestBlockAccessStream:
    def test_dedup_within_block(self):
        # Two rows in one block sharing a column -> one access.
        dense = np.array([[1.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        m = CSRMatrix.from_dense(dense)
        stream = block_access_stream(m, rows_per_block=2)
        assert sorted(stream.tolist()) == [0, 1, 2]

    def test_no_dedup_across_blocks(self):
        dense = np.array([[1.0, 0.0], [1.0, 0.0]])
        m = CSRMatrix.from_dense(dense)
        stream = block_access_stream(m, rows_per_block=1)
        assert stream.tolist() == [0, 0]

    def test_empty(self):
        assert block_access_stream(CSRMatrix.empty((4, 4)), 2).size == 0

    def test_paper_rowwise_count_is_13(self, paper_matrix):
        assert unique_block_column_count(paper_matrix, 2) == 13


class TestPaperExampleCounts:
    def test_full_walkthrough_13_12_6(self, paper_matrix):
        # The central worked example of the paper (Figs. 3 and 4):
        # row-wise = 13 accesses, ASpT = 12, ASpT + row reordering = 6.
        counts = paper_example_access_counts(
            paper_matrix,
            panel_height=3,
            rows_per_block=2,
            dense_threshold=2,
            round1_order=np.array([0, 4, 2, 3, 1, 5]),
            # Remainder rows (of the reordered matrix) grouped so that the
            # two pairs sharing a column land in the same thread block:
            # old rows (4,1) share column 3, (2,5) share column 2.
            round2_order=np.array([1, 4, 2, 5, 0, 3]),
        )
        assert counts.rowwise == 13
        assert counts.aspt == 12
        assert counts.aspt_reordered == 6

    def test_no_orders_defaults_to_identity(self, paper_matrix):
        counts = paper_example_access_counts(paper_matrix)
        assert counts.rowwise == 13
        assert counts.aspt == counts.aspt_reordered == 12


class TestCostModelConfig:
    def test_defaults_valid(self):
        CostModelConfig()

    def test_bw_eff_lookup(self):
        cfg = CostModelConfig()
        assert cfg.bw_eff("aspt") == cfg.aspt_bw_eff
        with pytest.raises(ConfigError):
            cfg.bw_eff("nonsense")

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            CostModelConfig(aspt_bw_eff=1.5)
        with pytest.raises(ConfigError):
            CostModelConfig(warps_per_block=0)
        with pytest.raises(ConfigError):
            CostModelConfig(cache_slack=0.0)
        with pytest.raises(ConfigError):
            CostModelConfig(launch_overhead_s=-1.0)

    def test_with_overrides(self):
        cfg = CostModelConfig().with_overrides(l2_utilization=0.25)
        assert cfg.l2_utilization == 0.25


class TestExecutorSpmm:
    @pytest.fixture
    def executor(self):
        return GPUExecutor(P100, cache_mode="exact")

    def test_cost_fields_populated(self, executor, rng):
        m = random_csr(rng, 64, 64, 0.1)
        cost = executor.spmm_cost(m, 512, "rowwise")
        assert cost.time_s > 0
        assert cost.flops == 2.0 * m.nnz * 512
        assert cost.gflops > 0
        assert cost.total_bytes > 0
        assert set(cost.bytes_breakdown) == {"s", "x_sparse", "y"}

    def test_aspt_requires_tiled(self, executor, rng):
        m = random_csr(rng, 32, 32, 0.1)
        with pytest.raises(ConfigError):
            executor.spmm_cost(m, 512, "aspt")

    def test_rowwise_requires_csr(self, executor, rng):
        m = random_csr(rng, 32, 32, 0.1)
        tiled = tile_matrix(m, 8, 2)
        with pytest.raises(ConfigError):
            executor.spmm_cost(tiled, 512, "rowwise")

    def test_unknown_variant(self, executor, rng):
        with pytest.raises(ConfigError):
            executor.spmm_cost(random_csr(rng, 8, 8, 0.2), 512, "magma")

    def test_k_scaling_roughly_linear(self, executor, rng):
        # Needs a paper-scale matrix so that launch overhead is negligible
        # relative to traffic (the paper filters for >= 100K nnz).
        m = random_csr(rng, 2000, 2000, 0.01)
        t512 = executor.spmm_cost(m, 512, "rowwise").time_s
        t1024 = executor.spmm_cost(m, 1024, "rowwise").time_s
        # Doubling K at least doubles traffic; it can be superlinear
        # because L2 holds half as many (twice-as-wide) X rows.
        assert 1.8 < t1024 / t512 < 4.0

    def test_identical_rows_make_aspt_win(self, rng):
        # A matrix of identical rows: ASpT captures everything in dense
        # tiles, the row-wise kernel re-fetches per block; with a tiny L2
        # the gap must be large.
        executor = GPUExecutor(
            P100.with_overrides(l2_bytes=64 * 1024), cache_mode="exact"
        )
        dense = np.zeros((256, 512))
        dense[:, rng.integers(0, 512, size=32)] = 1.0
        m = CSRMatrix.from_dense(dense)
        tiled = tile_matrix(m, 32, 2)
        assert tiled.dense_ratio == 1.0
        aspt = executor.spmm_cost(tiled, 512, "aspt")
        cusp = executor.spmm_cost(m, 512, "cusparse")
        assert aspt.speedup_over(cusp) > 1.5

    def test_diagonal_matrix_aspt_no_better(self, rng):
        executor = GPUExecutor(P100, cache_mode="exact")
        m = CSRMatrix.from_dense(np.eye(256))
        tiled = tile_matrix(m, 32, 2)
        aspt = executor.spmm_cost(tiled, 512, "aspt")
        rowwise = executor.spmm_cost(m, 512, "rowwise")
        # No dense tiles and no reuse: ASpT cannot beat row-wise here.
        assert aspt.time_s >= rowwise.time_s * 0.99

    def test_reordering_reduces_traffic_on_hidden_clusters(self, rng):
        # Build a matrix with strong hidden row clusters, shuffled.
        n_clusters, rows_per, n_cols = 16, 16, 2048
        patterns = [
            np.sort(rng.choice(n_cols, size=24, replace=False))
            for _ in range(n_clusters)
        ]
        rows = []
        for c in range(n_clusters):
            for _ in range(rows_per):
                rows.append(patterns[c])
        order = rng.permutation(n_clusters * rows_per)
        dense = np.zeros((n_clusters * rows_per, n_cols))
        for r, pat in enumerate(rows):
            dense[r, pat] = 1.0
        shuffled = CSRMatrix.from_dense(dense[order])
        # Recover clustering by sorting rows by pattern (ideal reordering).
        executor = GPUExecutor(
            P100.with_overrides(l2_bytes=32 * 1024), cache_mode="exact"
        )
        tiled_nr = tile_matrix(shuffled, 16, 2)
        cost_nr = executor.spmm_cost(tiled_nr, 512, "aspt")
        # Ideal reorder: restore original grouping.
        inverse = np.argsort(order)
        reordered = permute_csr_rows(shuffled, inverse.astype(np.int64))
        tiled_rr = tile_matrix(reordered, 16, 2)
        cost_rr = executor.spmm_cost(tiled_rr, 512, "aspt")
        assert tiled_rr.dense_ratio > tiled_nr.dense_ratio
        assert cost_rr.speedup_over(cost_nr) > 1.1

    def test_empty_matrix_cost_is_overhead(self, executor):
        m = CSRMatrix.empty((64, 64))
        cost = executor.spmm_cost(m, 512, "rowwise")
        assert cost.time_s > 0
        assert cost.flops == 0

    def test_as_dict_roundtrip(self, executor, rng):
        m = random_csr(rng, 16, 16, 0.2)
        d = executor.spmm_cost(m, 512, "cusparse").as_dict()
        assert d["op"] == "spmm" and d["variant"] == "cusparse"
        assert d["total_bytes"] == pytest.approx(sum(d["bytes_breakdown"].values()))


class TestExecutorSddmm:
    @pytest.fixture
    def executor(self):
        return GPUExecutor(P100, cache_mode="exact")

    def test_cost_fields(self, executor, rng):
        m = random_csr(rng, 64, 64, 0.1)
        cost = executor.sddmm_cost(m, 512, "rowwise")
        assert cost.op == "sddmm"
        assert "out" in cost.bytes_breakdown
        assert cost.flops == 2.0 * m.nnz * 512 + m.nnz

    def test_aspt_variant(self, executor, rng):
        m = random_csr(rng, 64, 64, 0.1)
        tiled = tile_matrix(m, 16, 2)
        cost = executor.sddmm_cost(tiled, 512, "aspt")
        assert cost.variant == "aspt"
        assert cost.time_s > 0

    def test_bidmach_slower_than_aspt(self, executor, rng):
        # Paper-scale matrix; at toy sizes launch overhead would dominate.
        m = random_csr(rng, 4000, 4000, 0.005)
        tiled = tile_matrix(m, 16, 2)
        aspt = executor.sddmm_cost(tiled, 512, "aspt")
        bid = executor.sddmm_cost(m, 512, "bidmach")
        assert aspt.speedup_over(bid) > 1.5

    def test_unknown_variant(self, executor, rng):
        with pytest.raises(ConfigError):
            executor.sddmm_cost(random_csr(rng, 8, 8, 0.2), 512, "cusparse")

    def test_invalid_cache_mode(self):
        with pytest.raises(ConfigError):
            GPUExecutor(P100, cache_mode="magic")
