"""Unit tests for repro.gpu.cache and repro.gpu.device."""

import numpy as np
import pytest

from repro.errors import ConfigError, ValidationError
from repro.gpu import P100, V100, DeviceSpec, approx_lru_hits, lru_hits, set_associative_hits
from repro.gpu.coalescing import row_load_bytes, row_load_transactions, stream_bytes


def naive_lru(stream, capacity):
    """Oracle: straightforward LRU list simulation."""
    cache = []
    hits = 0
    for b in stream:
        if b in cache:
            cache.remove(b)
            hits += 1
        elif len(cache) >= capacity:
            cache.pop(0)
        cache.append(b)
    return hits


class TestLruHits:
    def test_repeated_single_block(self):
        stats = lru_hits(np.array([7, 7, 7, 7]), 1)
        assert stats.hits == 3 and stats.misses == 1

    def test_cyclic_thrash(self):
        # Cyclic access to capacity+1 blocks: LRU always misses.
        stream = np.tile(np.arange(4), 5)
        stats = lru_hits(stream, 3)
        assert stats.hits == 0

    def test_cyclic_fits(self):
        stream = np.tile(np.arange(4), 5)
        stats = lru_hits(stream, 4)
        assert stats.hits == 16  # all after the first pass

    def test_empty_stream(self):
        stats = lru_hits(np.array([], dtype=np.int64), 8)
        assert stats.accesses == 0 and stats.hit_rate == 0.0

    def test_matches_naive_oracle(self):
        rng = np.random.default_rng(0)
        for cap in (1, 3, 8, 32):
            stream = rng.integers(0, 20, size=300)
            assert lru_hits(stream, cap).hits == naive_lru(stream.tolist(), cap)

    def test_skewed_stream_matches_oracle(self):
        rng = np.random.default_rng(1)
        stream = rng.zipf(1.5, size=400) % 50
        for cap in (2, 10, 40):
            assert lru_hits(stream, cap).hits == naive_lru(stream.tolist(), cap)

    def test_capacity_validation(self):
        with pytest.raises(ValidationError):
            lru_hits(np.array([1]), 0)

    def test_hit_rate(self):
        stats = lru_hits(np.array([1, 1]), 4)
        assert stats.hit_rate == 0.5


class TestApproxLruHits:
    def test_lower_bound_property(self):
        # With slack=1 the approximation never over-counts hits.
        rng = np.random.default_rng(2)
        for _ in range(10):
            stream = rng.integers(0, 30, size=200)
            cap = int(rng.integers(1, 20))
            exact = lru_hits(stream, cap).hits
            approx = approx_lru_hits(stream, cap, slack=1.0).hits
            assert approx <= exact

    def test_exact_on_single_block(self):
        stream = np.array([5, 5, 5])
        assert approx_lru_hits(stream, 1).hits == lru_hits(stream, 1).hits == 2

    def test_slack_increases_hits(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 50, size=300)
        low = approx_lru_hits(stream, 5, slack=1.0).hits
        high = approx_lru_hits(stream, 5, slack=8.0).hits
        assert high >= low

    def test_reasonable_accuracy_on_locality_stream(self):
        # Blocks with strong locality: approximation should land close.
        rng = np.random.default_rng(4)
        stream = np.concatenate(
            [rng.integers(base, base + 8, size=100) for base in range(0, 80, 8)]
        )
        exact = lru_hits(stream, 16).hits
        approx = approx_lru_hits(stream, 16, slack=4.0).hits
        assert approx == pytest.approx(exact, rel=0.25)

    def test_empty_stream(self):
        assert approx_lru_hits(np.array([], dtype=np.int64), 4).accesses == 0

    def test_bad_slack(self):
        with pytest.raises(ValueError):
            approx_lru_hits(np.array([1]), 4, slack=0.0)


class TestSetAssociative:
    def test_single_set_equals_lru(self):
        rng = np.random.default_rng(5)
        stream = rng.integers(0, 15, size=200)
        assert set_associative_hits(stream, 1, 8).hits == lru_hits(stream, 8).hits

    def test_conflict_misses(self):
        # Two blocks mapping to the same set of associativity 1 thrash.
        stream = np.array([0, 4, 0, 4, 0, 4])
        stats = set_associative_hits(stream, 4, 1)
        assert stats.hits == 0

    def test_associativity_resolves_conflicts(self):
        stream = np.array([0, 4, 0, 4, 0, 4])
        stats = set_associative_hits(stream, 4, 2)
        assert stats.hits == 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            set_associative_hits(np.array([1]), 0, 1)


class TestDeviceSpec:
    def test_p100_matches_paper(self):
        assert P100.n_sms == 56
        assert P100.l2_bytes == 4 * 1024 * 1024
        assert P100.shared_mem_per_sm == 64 * 1024
        assert P100.dram_bandwidth == pytest.approx(732e9)

    def test_l2_capacity_rows(self):
        # K=512 fp32 rows are 2 KiB -> 2048 rows at full utilisation.
        assert P100.l2_capacity_rows(512 * 4) == 2048
        assert P100.l2_capacity_rows(512 * 4, utilization=0.5) == 1024

    def test_l2_capacity_rows_minimum_one(self):
        assert P100.l2_capacity_rows(10**9) == 1

    def test_l2_capacity_invalid(self):
        with pytest.raises(ConfigError):
            P100.l2_capacity_rows(0)

    def test_max_dense_cols(self):
        # 64 KiB shared / (32 cols * 4 B) = 512 rows.
        assert P100.max_dense_cols(32) == 512

    def test_with_overrides(self):
        d = P100.with_overrides(l2_bytes=1024)
        assert d.l2_bytes == 1024 and d.name == "P100"
        assert P100.l2_bytes == 4 * 1024 * 1024  # original untouched

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            DeviceSpec("bad", 0, 32, 1, 1, 1, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            V100.with_overrides(dram_bandwidth=0.0)


class TestCoalescing:
    def test_row_load_transactions_exact_multiple(self):
        assert row_load_transactions(512, 4, 128) == 16

    def test_row_load_transactions_padding(self):
        assert row_load_transactions(1, 4, 128) == 1
        assert row_load_transactions(33, 4, 128) == 2

    def test_row_load_bytes(self):
        assert row_load_bytes(512, 4, 128) == 2048
        assert row_load_bytes(1, 4, 128) == 128

    def test_stream_bytes(self):
        assert stream_bytes(10, 4) == 40
        assert stream_bytes(0) == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            row_load_transactions(0)
        with pytest.raises(ValueError):
            stream_bytes(-1)
