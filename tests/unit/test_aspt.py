"""Unit tests for repro.aspt (panels, column sort, tiles, stats)."""

import numpy as np
import pytest

from repro.aspt import (
    PanelSpec,
    TiledMatrix,
    dense_ratio,
    panel_column_orders,
    panel_dense_column_histogram,
    panel_of_rows,
    split_into_panels,
    tile_matrix,
    tiling_stats,
)
from repro.errors import ValidationError
from repro.sparse import CSRMatrix, permute_csr_rows

from conftest import random_csr


class TestPanelSpec:
    def test_n_panels_exact_division(self):
        assert PanelSpec(6, 3).n_panels == 2

    def test_n_panels_ragged(self):
        assert PanelSpec(7, 3).n_panels == 3

    def test_n_panels_empty(self):
        assert PanelSpec(0, 3).n_panels == 0

    def test_panel_of(self):
        spec = PanelSpec(7, 3)
        assert spec.panel_of(0) == 0
        assert spec.panel_of(2) == 0
        assert spec.panel_of(3) == 1
        assert spec.panel_of(6) == 2

    def test_panel_of_out_of_range(self):
        with pytest.raises(IndexError):
            PanelSpec(6, 3).panel_of(6)

    def test_rows_of_last_short_panel(self):
        spec = PanelSpec(7, 3)
        assert spec.rows_of(2).tolist() == [6]

    def test_bounds(self):
        spec = PanelSpec(7, 3)
        assert spec.bounds(1) == (3, 6)
        assert spec.bounds(2) == (6, 7)

    def test_bounds_out_of_range(self):
        with pytest.raises(IndexError):
            PanelSpec(6, 3).bounds(2)

    def test_invalid_height(self):
        with pytest.raises(ValidationError):
            PanelSpec(6, 0)

    def test_panel_of_rows_vectorised(self):
        out = panel_of_rows(np.array([0, 3, 5, 6]), 3)
        assert out.tolist() == [0, 1, 1, 2]

    def test_split_into_panels(self, paper_matrix):
        panels = split_into_panels(paper_matrix, 3)
        assert len(panels) == 2
        assert panels[0].shape == (3, 6)
        assert panels[0].nnz + panels[1].nnz == 13


class TestColumnSort:
    def test_paper_first_panel_starts_with_col4(self, paper_matrix):
        orders = panel_column_orders(paper_matrix, 3)
        # Fig 3b: column 4 has two non-zeros in panel 0, all others <= 1.
        assert orders[0][0] == 4

    def test_paper_second_panel_natural_order(self, paper_matrix):
        orders = panel_column_orders(paper_matrix, 3)
        # All columns in panel 1 have at most one non-zero -> ties keep
        # ascending column order.
        assert orders[1].tolist() == sorted(
            orders[1].tolist(), key=lambda c: (-np.bincount(
                np.concatenate([paper_matrix.row_cols(r) for r in (3, 4, 5)]),
                minlength=6)[c], c),
        )

    def test_orders_are_permutations(self, rng):
        m = random_csr(rng, 20, 15, 0.2)
        for order in panel_column_orders(m, 4):
            assert sorted(order.tolist()) == list(range(15))

    def test_empty_matrix(self):
        orders = panel_column_orders(CSRMatrix.empty((6, 4)), 3)
        assert len(orders) == 2
        assert orders[0].tolist() == [0, 1, 2, 3]


class TestTileMatrix:
    def test_paper_original_dense_nnz_is_2(self, paper_matrix):
        # §2.3: with panel height 3 and threshold 2, only column 4 of the
        # first panel is dense -> 2 of 13 non-zeros in dense tiles.
        tiled = tile_matrix(paper_matrix, 3, 2)
        assert tiled.nnz_dense == 2
        assert tiled.nnz_sparse == 11
        assert tiled.panel_dense_cols[0].tolist() == [4]
        assert tiled.panel_dense_cols[1].tolist() == []

    def test_paper_reordered_dense_nnz_is_9(self, paper_matrix):
        # Fig 4b: after exchanging rows 1 and 4, dense tiles hold 9 nnz.
        reordered = permute_csr_rows(paper_matrix, np.array([0, 4, 2, 3, 1, 5]))
        tiled = tile_matrix(reordered, 3, 2)
        assert tiled.nnz_dense == 9
        assert tiled.panel_dense_cols[0].tolist() == [0, 4]
        assert tiled.panel_dense_cols[1].tolist() == [1, 5]

    def test_clustering_order_also_gives_9(self, paper_matrix):
        # Fig 6: the clustering returns [0, 2, 4, 1, 3, 5], which achieves
        # the same tiling quality (panel {0,2,4} has dense cols {0,4}... )
        reordered = permute_csr_rows(paper_matrix, np.array([0, 2, 4, 1, 3, 5]))
        tiled = tile_matrix(reordered, 3, 2)
        assert tiled.panel_dense_cols[0].tolist() == [0, 4]
        assert tiled.nnz_dense >= 5

    def test_partition_is_exact(self, rng):
        m = random_csr(rng, 30, 20, 0.2)
        tiled = tile_matrix(m, 4, 2)
        tiled.validate()

    def test_dense_ratio_bounds(self, rng):
        m = random_csr(rng, 30, 20, 0.2)
        tiled = tile_matrix(m, 4, 2)
        assert 0.0 <= tiled.dense_ratio <= 1.0
        assert tiled.dense_ratio == pytest.approx(tiled.nnz_dense / m.nnz)

    def test_threshold_one_puts_everything_dense(self, rng):
        m = random_csr(rng, 20, 10, 0.3)
        tiled = tile_matrix(m, 4, 1)
        assert tiled.nnz_sparse == 0
        assert tiled.dense_ratio == 1.0

    def test_huge_threshold_puts_everything_sparse(self, rng):
        m = random_csr(rng, 20, 10, 0.3)
        tiled = tile_matrix(m, 4, 100)
        assert tiled.nnz_dense == 0

    def test_empty_matrix(self):
        tiled = tile_matrix(CSRMatrix.empty((6, 6)), 3)
        assert tiled.nnz_dense == 0 and tiled.nnz_sparse == 0
        assert len(tiled.panel_dense_cols) == 2

    def test_diagonal_matrix_no_dense_tiles(self):
        tiled = tile_matrix(CSRMatrix.from_dense(np.eye(12)), 4, 2)
        assert tiled.nnz_dense == 0

    def test_identical_rows_all_dense(self):
        dense = np.zeros((6, 8))
        dense[:, [1, 3, 6]] = 1.0
        tiled = tile_matrix(CSRMatrix.from_dense(dense), 3, 2)
        assert tiled.dense_ratio == 1.0
        assert tiled.panel_dense_cols[0].tolist() == [1, 3, 6]

    def test_max_dense_cols_cap(self):
        dense = np.zeros((4, 10))
        dense[:, 0:3] = 1.0  # three columns with 4 nnz each
        dense[0:2, 5] = 1.0  # one column with 2 nnz
        m = CSRMatrix.from_dense(dense)
        uncapped = tile_matrix(m, 4, 2)
        assert uncapped.panel_dense_cols[0].tolist() == [0, 1, 2, 5]
        capped = tile_matrix(m, 4, 2, max_dense_cols=2)
        # Keeps the two densest (count 4, tie-broken by column index).
        assert capped.panel_dense_cols[0].tolist() == [0, 1]
        assert capped.nnz_dense == 8
        capped.validate()

    def test_max_dense_cols_across_panels(self, rng):
        m = random_csr(rng, 40, 12, 0.4)
        capped = tile_matrix(m, 4, 2, max_dense_cols=3)
        for cols in capped.panel_dense_cols:
            assert cols.size <= 3
        capped.validate()

    def test_invalid_args(self, paper_matrix):
        with pytest.raises(ValidationError):
            tile_matrix(paper_matrix, 0)
        with pytest.raises(ValidationError):
            tile_matrix(paper_matrix, 3, 0)
        with pytest.raises(ValidationError):
            tile_matrix(paper_matrix, 3, 2, max_dense_cols=0)

    def test_ragged_last_panel(self, rng):
        m = random_csr(rng, 7, 10, 0.4)
        tiled = tile_matrix(m, 3, 2)
        assert len(tiled.panel_dense_cols) == 3
        tiled.validate()


class TestStats:
    def test_dense_ratio_helper(self, paper_matrix):
        assert dense_ratio(paper_matrix, 3, 2) == pytest.approx(2 / 13)

    def test_tiling_stats(self, paper_matrix):
        tiled = tile_matrix(paper_matrix, 3, 2)
        s = tiling_stats(tiled)
        assert s.n_panels == 2
        assert s.nnz_total == 13 and s.nnz_dense == 2
        assert s.n_dense_column_instances == 1
        assert s.max_dense_cols_in_panel == 1
        assert s.panels_with_dense_tiles == 1
        assert s.as_dict()["dense_ratio"] == pytest.approx(2 / 13)

    def test_histogram(self, paper_matrix):
        tiled = tile_matrix(paper_matrix, 3, 2)
        hist = panel_dense_column_histogram(tiled)
        assert hist.tolist() == [1, 1]  # one panel with 0, one with 1
