"""Tests for the inter-procedural dataflow engine (RD4xx-RD6xx).

Covers the engine building blocks (call graph, CFG solver, dtype
lattice), each rule family against flagged/clean fixtures, the
inter-procedural mini-project corpus, SARIF rendering against a golden
snapshot, baseline round-trips, and the content-addressed incremental
session (correct dirty closure *and* the cold/warm speedup).
"""

import ast
import json
import time
from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_paths, lint_session, lint_source
from repro.analysis.core import Finding
from repro.analysis.dataflow.baseline import (
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    save_baseline,
)
from repro.analysis.dataflow.callgraph import (
    CallGraph,
    module_imports,
    module_name_for,
    parse_module,
)
from repro.analysis.dataflow.cfg import build_cfg, solve_forward
from repro.analysis.dataflow.engine import DATAFLOW_CODES
from repro.analysis.dataflow.lattice import (
    BOT,
    BOTTOM_VAL,
    F32,
    F64,
    INT,
    TOP,
    dtype_join,
    join_vals,
    make_const,
    make_params,
)
from repro.analysis.dataflow.sarif import (
    render_sarif,
    render_sarif_json,
    validate_sarif,
)

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "reprolint"
MINIPROJ = FIXTURES / "miniproj"

#: Restrict runs to the dataflow families so per-file rules stay quiet.
DF_CODES = frozenset(DATAFLOW_CODES)

#: module_rel giving a fixture every dataflow scope, including the
#: kernel-return RD402 sink.
KERNEL_SCOPE = "repro/kernels/fixture.py"


def df_config(**kwargs):
    return LintConfig(select=DF_CODES, **kwargs)


def lint_fixture(name, module_path=KERNEL_SCOPE):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(
        source, display=name, config=df_config(), module_path=module_path
    )


def lint_snippet(source, module_path=KERNEL_SCOPE):
    return lint_source(
        source, display="snippet.py", config=df_config(), module_path=module_path
    )


def codes_of(findings):
    return sorted(f.code for f in findings)


def make_module(name, source, module_rel=None):
    tree = ast.parse(source)
    return parse_module(
        name, f"{name}.py", module_rel or f"{name}.py", tree,
        source.splitlines(),
    )


def calls_in(module):
    """``name/attr -> ast.Call.func`` for every call in the module."""
    out = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            label = func.attr if isinstance(func, ast.Attribute) else func.id
            out[label] = func
    return out


class TestCallGraph:
    SOURCE = (
        "import numpy as np\n"
        "from repro.util.hashing import stable_digest\n"
        "def helper(x):\n"
        "    return x\n"
        "def main(x):\n"
        "    helper(x)\n"
        "    np.zeros(3)\n"
        "    stable_digest(x)\n"
        "    sorted(x)\n"
    )

    def graph(self):
        module = make_module("pkg.mod", self.SOURCE)
        return CallGraph({"pkg.mod": module}), module

    def test_internal_resolution(self):
        graph, module = self.graph()
        tag, key = graph.resolve(module, calls_in(module)["helper"])
        assert (tag, key) == ("internal", "pkg.mod:helper")

    def test_external_resolution_canonicalises_np(self):
        graph, module = self.graph()
        tag, name = graph.resolve(module, calls_in(module)["zeros"])
        assert (tag, name) == ("external", "numpy.zeros")

    def test_from_import_resolves_to_source_module(self):
        graph, module = self.graph()
        tag, name = graph.resolve(module, calls_in(module)["stable_digest"])
        assert (tag, name) == ("external", "repro.util.hashing.stable_digest")

    def test_builtin_resolution(self):
        graph, module = self.graph()
        assert graph.resolve(module, calls_in(module)["sorted"]) == (
            "builtin", "sorted",
        )

    def test_module_name_for(self):
        assert module_name_for("repro/kernels/spmm.py") == "repro.kernels.spmm"
        assert module_name_for("repro/util/__init__.py") == "repro.util"

    def test_module_imports_lists_both_forms(self):
        module = make_module("pkg.mod", self.SOURCE)
        imports = module_imports(module)
        assert "numpy" in imports
        assert "repro.util.hashing" in imports
        assert "repro.util.hashing.stable_digest" in imports


class TestCfg:
    def fn(self, body):
        return ast.parse(f"def f(x):\n{body}").body[0]

    def test_branch_has_exit_edges_and_merge(self):
        cfg = build_cfg(self.fn("    if x:\n        return 1\n    return 2\n"))
        exit_preds = [b.id for b in cfg.blocks if cfg.exit in b.succs]
        assert len(exit_preds) == 2  # both returns reach the exit block

    def test_reachability_excludes_early_return_branch(self):
        cfg = build_cfg(
            self.fn("    if x:\n        return 1\n    y = 2\n    return y\n")
        )
        reach = cfg.reachable_from()
        # The then-branch block (holding `return 1`) reaches only exit.
        then_blocks = [
            b.id for b in cfg.blocks
            if any(
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Constant)
                and node.value.value == 1
                for _, node in b.items
            )
        ]
        assert then_blocks
        assert reach[then_blocks[0]] == {cfg.exit}

    def test_loop_back_edge_makes_body_self_reachable(self):
        cfg = build_cfg(self.fn("    for i in x:\n        y = i\n    return x\n"))
        reach = cfg.reachable_from()
        body = [
            b.id for b in cfg.blocks
            if any(isinstance(n, ast.Assign) for _, n in b.items)
        ][0]
        assert body in reach[body]  # around the loop and back

    def test_solve_forward_reaches_fixpoint_on_loop(self):
        cfg = build_cfg(
            self.fn("    y = 0\n    while x:\n        y = y + 1\n    return y\n")
        )

        def transfer(kind, node, env):
            if isinstance(node, ast.Assign):
                env = dict(env)
                env[node.targets[0].id] = env.get(node.targets[0].id, 0) + 1
            return env

        def join(a, b, succ):
            return {k: max(a.get(k, 0), b.get(k, 0)) for k in set(a) | set(b)}

        envs = solve_forward(cfg, {}, transfer, join)
        assert envs[cfg.exit]["y"] >= 1  # terminated despite the cycle


class TestLattice:
    def test_join_table(self):
        assert dtype_join(F32, F64) == F64  # the upcast the analysis hunts
        assert dtype_join(F32, INT) == TOP
        assert dtype_join(BOT, F32) == F32
        assert dtype_join(TOP, F64) == TOP

    def test_f32_meets_f64_emits_f32_event(self):
        origin = (3, 0, "np.zeros(...)", True)
        joined, event = join_vals(make_const(F32), make_const(F64, origin))
        assert joined[0] == F64
        assert event == ("f32", origin)

    def test_param_path_meets_f64_emits_param_event(self):
        origin = (7, 4, "explicit dtype=float64", False)
        joined, event = join_vals(make_params(["x"]), make_const(F64, origin))
        assert joined == (F64, frozenset({"x"}), origin)
        assert event == ("param", origin)

    def test_agreeing_values_emit_nothing(self):
        _, event = join_vals(make_const(F64), make_const(F64))
        assert event is None
        _, event = join_vals(BOTTOM_VAL, make_params(["x"]))
        assert event is None


class TestFlaggedFixture:
    def test_all_dataflow_rules_fire(self):
        findings = lint_fixture("flagged_dataflow.py")
        assert codes_of(findings) == [
            "RD401", "RD401",
            "RD402", "RD402", "RD402", "RD402",
            "RD501", "RD501",
            "RD601", "RD601",
            "RD602",
        ]

    def test_rd401_names_source_and_sink(self):
        findings = [f for f in lint_fixture("flagged_dataflow.py")
                    if f.code == "RD401"]
        assert any("time.time()" in f.message and "stable_digest" in f.message
                   for f in findings)
        assert any("set iteration order" in f.message and "update" in f.message
                   for f in findings)

    def test_rd601_reports_both_target_kinds(self):
        findings = [f for f in lint_fixture("flagged_dataflow.py")
                    if f.code == "RD601"]
        messages = " | ".join(f.message for f in findings)
        assert "noisy_validator()" in messages  # direct @checked reference
        assert "Plan.validate()" in messages  # via the validates() factory

    def test_kernel_sink_inactive_outside_kernel_paths(self):
        findings = lint_fixture(
            "flagged_dataflow.py", module_path="repro/measures/fixture.py"
        )
        assert "RD402" not in codes_of(findings)


class TestCleanFixture:
    def test_clean_fixture_is_silent(self):
        assert lint_fixture("clean_dataflow.py") == []

    def test_dict_order_is_not_a_kernel_sink(self):
        # Insertion order is per-run deterministic; listing a registry is
        # not nondeterministic kernel output (it IS still an RD401 sink).
        findings = lint_snippet(
            "def available(registry):\n"
            "    return tuple(k for k, v in registry.items() if v)\n"
        )
        assert findings == []

    def test_exit_merges_do_not_report(self):
        # The early return leaves `x` un-coerced on one path; the paths
        # only meet after the function is over, which is not an upcast.
        findings = lint_snippet(
            "import numpy as np\n"
            "def f(x, fast):\n"
            "    if fast:\n"
            "        return x\n"
            "    x = np.asarray(x, dtype=np.float64)\n"
            "    return x * 2\n"
        )
        assert findings == []


class TestMiniproj:
    def run(self):
        return lint_paths([MINIPROJ], df_config(root=MINIPROJ))

    def test_interprocedural_findings(self):
        got = {(f.path, f.line, f.code) for f in self.run()}
        assert got == {
            ("repro/kernels/compute.py", 12, "RD401"),
            ("repro/kernels/compute.py", 16, "RD402"),
            ("repro/kernels/compute.py", 21, "RD501"),
            ("repro/kernels/compute.py", 29, "RD602"),
            ("repro/kernels/helpers.py", 10, "RD402"),
            ("repro/plans.py", 13, "RD601"),
        }

    def test_taint_crosses_two_call_edges(self):
        finding = [f for f in self.run() if f.code == "RD401"][0]
        assert "time.perf_counter()" in finding.message

    def test_param_mutation_needs_observable_argument(self):
        # staged() passes its own parameter into bump() -> flagged;
        # staged_fresh() passes a fresh dict -> silent.  Same callee.
        lines = [f.line for f in self.run() if f.code == "RD602"]
        assert lines == [29]

    def test_contract_purity_is_binding_aware(self):
        # build's target audit() mutates through bump(); assemble's
        # target inspect() calls the same bump() on a fresh dict.
        findings = [f for f in self.run() if f.code == "RD601"]
        assert len(findings) == 1
        assert "audit()" in findings[0].message
        assert "bump()" in findings[0].message


class TestSuppressionSpans:
    IMPURE = (
        "_LOG = []\n"
        "def checked(*c):\n"
        "    def wrap(fn):\n"
        "        return fn\n"
        "    return wrap\n"
        "def validator(plan):\n"
        "    _LOG.append(plan)\n"
        "    return True\n"
        "@checked(validator)\n"
        "def build(plan):\n"
        "    return plan\n"
    )

    def test_finding_anchors_at_def_line(self):
        findings = lint_snippet(self.IMPURE)
        assert [(f.code, f.line) for f in findings] == [("RD601", 6)]

    def test_suppression_on_def_line_covers_it(self):
        patched = self.IMPURE.replace(
            "def validator(plan):",
            "def validator(plan):  # reprolint: disable=RD601 -- audit log",
        )
        assert lint_snippet(patched) == []

    def test_decorated_span_attribution(self):
        # The regression: a suppression on the *decorator* line must
        # cover a finding anchored at the `def` line below it.
        decorated = self.IMPURE.replace(
            "def validator(plan):",
            "@staticmethod  # reprolint: disable=RD601 -- audit log\n"
            "def validator(plan):",
        )
        assert lint_snippet(decorated) == []


class TestRelativePaths:
    def test_reports_never_leak_absolute_paths(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        target.parent.mkdir()
        target.write_text("x = 1 == 2.0\n")
        findings = lint_paths([tmp_path], LintConfig(root=tmp_path))
        assert findings and all(not Path(f.path).is_absolute() for f in findings)
        assert findings[0].path == "pkg/mod.py"

    def test_paths_outside_root_use_relative_components(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        outside = tmp_path / "elsewhere.py"
        outside.write_text("x = 1 == 2.0\n")
        findings = lint_paths([outside], LintConfig(root=root))
        assert findings[0].path == "../elsewhere.py"


class TestSarif:
    def findings(self):
        return lint_fixture("flagged_dataflow.py")

    def test_golden_snapshot(self):
        golden = (FIXTURES / "golden_dataflow.sarif").read_text(encoding="utf-8")
        rendered = render_sarif_json(self.findings(), tool_version="golden")
        assert rendered + "\n" == golden

    def test_document_validates(self):
        doc = render_sarif(self.findings())
        assert validate_sarif(doc) == []

    def test_rule_metadata_and_indices_line_up(self):
        doc = render_sarif(self.findings())
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            rule = rules[result["ruleIndex"]]
            assert rule["id"] == result["ruleId"]

    def test_validator_catches_absolute_uris(self):
        doc = render_sarif(self.findings())
        location = doc["runs"][0]["results"][0]["locations"][0]
        location["physicalLocation"]["artifactLocation"]["uri"] = "/abs/path.py"
        assert any("uri" in p for p in validate_sarif(doc))

    def test_validator_catches_missing_version(self):
        doc = render_sarif(self.findings())
        del doc["version"]
        assert any("version" in p for p in validate_sarif(doc))


class TestBaseline:
    def finding(self, line=3, message="bad thing"):
        return Finding(path="pkg/mod.py", line=line, col=0, code="RD401",
                       message=message)

    def test_round_trip_suppresses_known_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([self.finding()], path)
        new, baselined = apply_baseline([self.finding()], load_baseline(path))
        assert new == [] and len(baselined) == 1

    def test_new_findings_survive(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([self.finding()], path)
        fresh = self.finding(message="different defect")
        new, _ = apply_baseline([self.finding(), fresh], load_baseline(path))
        assert new == [fresh]

    def test_fingerprints_ignore_line_numbers(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([self.finding(line=3)], path)
        moved = self.finding(line=40)  # imports added above: pure motion
        new, baselined = apply_baseline([moved], load_baseline(path))
        assert new == [] and baselined == [moved]

    def test_load_normalises_foreign_paths(self, tmp_path):
        finding = self.finding()
        doc = {
            "version": 1,
            "count": 1,
            "findings": [{
                "fingerprint": "stale-or-wrong",
                "path": ".\\pkg\\mod.py",  # windows-captured baseline
                "code": finding.code,
                "message": finding.message,
            }],
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(doc))
        assert finding_fingerprint(finding) in load_baseline(path)


def write_chain_project(root, n_extra=0):
    """``a -> b -> c`` import chain plus ``loner`` (and padding files)."""
    (root / "c.py").write_text(
        "def leaf(x):\n    return x == 0.5\n"
    )
    (root / "b.py").write_text(
        "import c\n\ndef mid(x):\n    return c.leaf(x)\n"
    )
    (root / "a.py").write_text(
        "import b\n\ndef top(x):\n    return b.mid(x)\n"
    )
    (root / "loner.py").write_text("def alone():\n    return 1\n")
    for i in range(n_extra):
        body = "\n".join(
            f"def fn_{i}_{j}(x):\n    y = x + {j}\n    return y\n"
            for j in range(20)
        )
        (root / f"pad_{i}.py").write_text(body + "\n")


class TestIncremental:
    def session(self, root):
        return lint_session(
            [root], LintConfig(root=root), cache_dir=root / ".cache"
        )

    def test_cold_then_warm(self, tmp_path):
        write_chain_project(tmp_path)
        cold_findings, cold = self.session(tmp_path)
        assert cold.misses == 4 and cold.hits == 0
        warm_findings, warm = self.session(tmp_path)
        assert warm.misses == 0 and warm.hits == 4
        assert warm_findings == cold_findings  # cached findings verbatim

    def test_touching_a_leaf_dirties_only_its_importers(self, tmp_path):
        write_chain_project(tmp_path)
        self.session(tmp_path)
        (tmp_path / "c.py").write_text(
            "def leaf(x):\n    return x == 0.25\n"
        )
        _, stats = self.session(tmp_path)
        assert sorted(stats.dirty) == ["a.py", "b.py", "c.py"]
        assert stats.hits == 1  # loner.py untouched

    def test_stats_render_mentions_counts(self, tmp_path):
        write_chain_project(tmp_path)
        _, stats = self.session(tmp_path)
        assert stats.render() == "incremental: 4/4 files re-analysed, 0 cached"
        assert stats.to_dict()["misses"] == 4

    def test_warm_run_is_at_least_5x_faster(self, tmp_path):
        write_chain_project(tmp_path, n_extra=12)
        start = time.perf_counter()
        self.session(tmp_path)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        _, stats = self.session(tmp_path)
        warm = time.perf_counter() - start
        assert stats.misses == 0
        assert warm * 5 <= cold, f"warm {warm:.4f}s vs cold {cold:.4f}s"

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        write_chain_project(tmp_path)
        self.session(tmp_path)
        cache_file = tmp_path / ".cache" / "reprolint-cache.json"
        cache_file.write_text("{not json")
        _, stats = self.session(tmp_path)
        assert stats.misses == 4


class TestDataflowCli:
    def run_main(self, argv, capsys):
        from repro.analysis.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def bad_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1 == 2.0\n")
        return bad

    def test_sarif_flag_writes_valid_report(self, tmp_path, monkeypatch, capsys):
        bad = self.bad_file(tmp_path)
        monkeypatch.chdir(tmp_path)
        out_file = tmp_path / "report.sarif"
        code, _, _ = self.run_main([str(bad), "--sarif", str(out_file)], capsys)
        assert code == 1
        doc = json.loads(out_file.read_text())
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"][0]["ruleId"] == "RD201"

    def test_sarif_format_prints_document(self, tmp_path, monkeypatch, capsys):
        bad = self.bad_file(tmp_path)
        monkeypatch.chdir(tmp_path)
        code, out, _ = self.run_main([str(bad), "--format", "sarif"], capsys)
        assert code == 1
        assert json.loads(out)["version"] == "2.1.0"

    def test_baseline_cycle(self, tmp_path, monkeypatch, capsys):
        bad = self.bad_file(tmp_path)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        code, _, err = self.run_main(
            [str(bad), "--baseline", str(baseline), "--update-baseline"], capsys
        )
        assert code == 0 and "baseline updated" in err
        code, _, err = self.run_main(
            [str(bad), "--baseline", str(baseline)], capsys
        )
        assert code == 0  # the old debt no longer fails the run
        assert "1 finding suppressed" in err

    def test_incremental_flag_reports_stats(self, tmp_path, monkeypatch, capsys):
        self.bad_file(tmp_path)
        monkeypatch.chdir(tmp_path)
        code, _, err = self.run_main(["."], capsys)
        assert code == 1
        code, _, err = self.run_main([".", "--incremental"], capsys)
        assert code == 1 and "re-analysed" in err
        code, _, err = self.run_main([".", "--incremental"], capsys)
        assert code == 1 and "0/1" in err


class TestRegistryWiring:
    def test_dataflow_codes_are_registered(self):
        from repro.analysis import REGISTRY
        from repro.analysis.core import ProjectRule

        for code in DATAFLOW_CODES:
            assert code in REGISTRY
            assert isinstance(REGISTRY[code], ProjectRule)
