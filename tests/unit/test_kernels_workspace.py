"""Pooled vs unpooled kernels must be bitwise identical.

Every kernel that accepts ``workspace=`` leases its scratch from a
size-class pool instead of allocating per call; these tests pin down that
the pooled path changes *nothing* about the results — same bits, same
dtypes — and that ``out=`` buffers are reused correctly across calls.
"""

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.kernels import (
    sddmm,
    sddmm_tiled,
    spmm,
    spmm_blocked,
    spmm_tiled,
    spmv,
)
from repro.util.workspace import WorkspacePool

from conftest import random_csr


@pytest.fixture
def csr(rng):
    return random_csr(rng, 32, 24, density=0.15)


@pytest.fixture
def dense(rng, csr):
    X = rng.normal(size=(csr.n_cols, 7))
    Y = rng.normal(size=(csr.n_rows, 7))
    return X, Y


class TestPooledBitwise:
    def test_spmm(self, csr, dense):
        X, _ = dense
        pool = WorkspacePool()
        np.testing.assert_array_equal(spmm(csr, X, workspace=pool), spmm(csr, X))
        # second call reuses the parked blocks and still matches
        np.testing.assert_array_equal(spmm(csr, X, workspace=pool), spmm(csr, X))
        assert pool.stats()["hits"] > 0

    def test_spmm_blocked(self, csr, dense):
        X, _ = dense
        pool = WorkspacePool()
        np.testing.assert_array_equal(
            spmm_blocked(csr, X, block_rows=8, workspace=pool),
            spmm_blocked(csr, X, block_rows=8),
        )

    def test_spmv(self, csr, rng):
        x = rng.normal(size=csr.n_cols)
        pool = WorkspacePool()
        np.testing.assert_array_equal(spmv(csr, x, workspace=pool), spmv(csr, x))

    def test_sddmm(self, csr, dense):
        X, Y = dense
        pool = WorkspacePool()
        got = sddmm(csr, X, Y, workspace=pool)
        want = sddmm(csr, X, Y)
        np.testing.assert_array_equal(got.values, want.values)
        np.testing.assert_array_equal(got.colidx, want.colidx)

    def test_spmm_tiled(self, csr, dense):
        X, _ = dense
        tiled = tile_matrix(csr, 8, 2)
        pool = WorkspacePool()
        np.testing.assert_array_equal(
            spmm_tiled(tiled, X, workspace=pool), spmm_tiled(tiled, X)
        )

    def test_sddmm_tiled(self, csr, dense):
        X, Y = dense
        tiled = tile_matrix(csr, 8, 2)
        pool = WorkspacePool()
        got = sddmm_tiled(tiled, X, Y, workspace=pool)
        want = sddmm_tiled(tiled, X, Y)
        np.testing.assert_array_equal(got.values, want.values)

    def test_leased_workspace_accepted_directly(self, csr, dense):
        X, _ = dense
        pool = WorkspacePool()
        with pool.lease() as ws:
            np.testing.assert_array_equal(spmm(csr, X, workspace=ws), spmm(csr, X))


class TestFloat32Preservation:
    def test_spmm_float32_pooled(self, csr, rng):
        X32 = rng.normal(size=(csr.n_cols, 5)).astype(np.float32)
        pool = WorkspacePool()
        got = spmm(csr, X32, workspace=pool)
        want = spmm(csr, X32)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)

    def test_spmm_blocked_float32_pooled(self, csr, rng):
        X32 = rng.normal(size=(csr.n_cols, 5)).astype(np.float32)
        pool = WorkspacePool()
        np.testing.assert_array_equal(
            spmm_blocked(csr, X32, block_rows=8, workspace=pool),
            spmm_blocked(csr, X32, block_rows=8),
        )


class TestOutBuffers:
    def test_spmm_blocked_out_is_returned(self, csr, dense):
        X, _ = dense
        out = np.empty((csr.n_rows, X.shape[1]))
        got = spmm_blocked(csr, X, block_rows=8, out=out)
        assert got is out
        np.testing.assert_array_equal(out, spmm(csr, X))

    def test_spmm_blocked_out_reused_across_calls(self, csr, dense):
        X, _ = dense
        out = np.full((csr.n_rows, X.shape[1]), np.nan)  # stale garbage
        spmm_blocked(csr, X, block_rows=8, out=out)
        spmm_blocked(csr, X * -1.0, block_rows=8, out=out)
        np.testing.assert_array_equal(out, spmm(csr, X * -1.0))

    def test_spmm_out_with_pool(self, csr, dense):
        X, _ = dense
        pool = WorkspacePool()
        out = np.empty((csr.n_rows, X.shape[1]))
        spmm(csr, X, out=out, workspace=pool)
        np.testing.assert_array_equal(out, spmm(csr, X))

    def test_spmm_blocked_out_view_of_larger_buffer(self, csr, dense):
        X, _ = dense
        backing = np.empty((csr.n_rows + 4, X.shape[1]))
        out = backing[2 : 2 + csr.n_rows]  # aliases the middle of backing
        spmm_blocked(csr, X, block_rows=8, out=out)
        np.testing.assert_array_equal(out, spmm(csr, X))
