"""Unit tests for the repro CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sparse import CSRMatrix, read_matrix_market, write_matrix_market


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.k == [512, 1024]
        assert args.scale == "small"

    def test_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "9", "--k", "1024"])
        assert args.number == 9 and args.k == 1024


class TestCommands:
    def test_generators(self, capsys):
        assert main(["generators"]) == 0
        out = capsys.readouterr().out
        assert "rmat" in out and "hidden_clusters" in out

    def test_corpus_listing(self, capsys):
        assert main(["corpus", "--scale", "tiny", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "hidden" in out

    def test_run_table_figure_roundtrip(self, tmp_path, capsys, monkeypatch):
        out_path = tmp_path / "results.json"
        # Run on the tiny scale to keep CI fast.
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "tiny",
                    "--repeats",
                    "1",
                    "--k",
                    "512",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        assert out_path.exists()
        data = json.loads(out_path.read_text())
        assert len(data) > 0

        for table in ("1", "2", "3", "4"):
            assert main(["table", table, "--records", str(out_path)]) == 0
        for fig in ("8", "9", "10", "11", "12"):
            assert main(["figure", fig, "--records", str(out_path), "--k", "512"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Fig 8" in out

    def test_reorder_mtx(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        dense = np.zeros((40, 40))
        pattern = rng.choice(40, size=6, replace=False)
        for group in range(8):
            rows = rng.choice(40, size=5, replace=False)
            cols = rng.choice(40, size=6, replace=False)
            for r in rows:
                dense[r, cols] = 1.0
        m = CSRMatrix.from_dense(dense)
        src = tmp_path / "in.mtx"
        dst = tmp_path / "out.mtx"
        write_matrix_market(src, m)
        assert (
            main(["reorder", "--mtx", str(src), "--out", str(dst), "--panel-height", "4"])
            == 0
        )
        reordered = read_matrix_market(dst)
        assert reordered.shape == m.shape
        assert reordered.nnz == m.nnz
        out = capsys.readouterr().out
        assert "dense ratio" in out

    def test_metis_command(self, capsys):
        assert main(["metis", "--scale", "tiny", "--k", "512"]) == 0
        out = capsys.readouterr().out
        assert "vertex reordering" in out


class TestFigureJsonExport:
    def test_json_dump(self, tmp_path, capsys):
        out_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--out", str(out_path)]) == 0
        )
        fig_path = tmp_path / "fig9.json"
        assert (
            main(["figure", "9", "--records", str(out_path), "--k", "512",
                  "--json", str(fig_path)]) == 0
        )
        data = json.loads(fig_path.read_text())
        assert "delta_dense_ratio" in data and "text" not in data


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        records_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--out", str(records_path)]) == 0
        )
        out_md = tmp_path / "EXP.md"
        assert (
            main(["report", "--records", str(records_path), "--out", str(out_md)]) == 0
        )
        text = out_md.read_text()
        assert "Table 1" in text and "per-category" in text


class TestHtmlReport:
    def test_html_report_from_cli(self, tmp_path, capsys):
        records_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--out", str(records_path)]) == 0
        )
        html_path = tmp_path / "report.html"
        assert (
            main(["report", "--records", str(records_path),
                  "--out", str(tmp_path / "EXP.md"), "--html", str(html_path)]) == 0
        )
        text = html_path.read_text()
        assert text.count("<svg") == 5
        assert "Table 1" in text and "prefers-color-scheme" in text

    def test_render_html_report_direct(self, tmp_path):
        from repro.experiments import (
            ExperimentConfig,
            render_html_report,
            run_experiment,
        )
        from repro.datasets import build_corpus

        entries = build_corpus("tiny", repeats=1, categories=("hidden",))[:2]
        records = run_experiment(
            ExperimentConfig(ks=(512, 1024), scale="tiny", repeats=1),
            entries=entries,
        )
        html = render_html_report(records, mode="dark")
        assert "#1a1a19" in html  # dark figures embedded
        assert "Table 4" in html


class TestAutotuneCommand:
    def test_autotune_mtx(self, tmp_path, capsys):
        from repro.datasets import hidden_clusters
        from repro.sparse import write_matrix_market

        m = hidden_clusters(60, 6, 1024, 12, seed=0)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, m)
        assert main(["autotune", "--mtx", str(path), "--k", "256",
                     "--panel-height", "8"]) == 0
        out = capsys.readouterr().out
        assert "decision:" in out and "modelled spmm" in out


class TestJobsFlag:
    def test_jobs_parse_default(self):
        args = build_parser().parse_args(["run"])
        assert args.jobs == 1

    def test_run_with_jobs(self, tmp_path):
        out_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--jobs", "2", "--out", str(out_path)]) == 0
        )
        assert out_path.exists()
