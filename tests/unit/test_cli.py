"""Unit tests for the repro CLI."""

import json

import numpy as np
import pytest

from repro.cli import _HANDLERS, build_parser, main
from repro.errors import EXIT_DATA, EXIT_IO, EXIT_OK, EXIT_USAGE
from repro.sparse import CSRMatrix, read_matrix_market, write_matrix_market


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.k == [512, 1024]
        assert args.scale == "small"

    def test_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "9", "--k", "1024"])
        assert args.number == 9 and args.k == 1024


class TestCommands:
    def test_generators(self, capsys):
        assert main(["generators"]) == 0
        out = capsys.readouterr().out
        assert "rmat" in out and "hidden_clusters" in out

    def test_corpus_listing(self, capsys):
        assert main(["corpus", "--scale", "tiny", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "hidden" in out

    def test_run_table_figure_roundtrip(self, tmp_path, capsys, monkeypatch):
        out_path = tmp_path / "results.json"
        # Run on the tiny scale to keep CI fast.
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "tiny",
                    "--repeats",
                    "1",
                    "--k",
                    "512",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        assert out_path.exists()
        data = json.loads(out_path.read_text())
        assert len(data) > 0

        for table in ("1", "2", "3", "4"):
            assert main(["table", table, "--records", str(out_path)]) == 0
        for fig in ("8", "9", "10", "11", "12"):
            assert main(["figure", fig, "--records", str(out_path), "--k", "512"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Fig 8" in out

    def test_reorder_mtx(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        dense = np.zeros((40, 40))
        pattern = rng.choice(40, size=6, replace=False)
        for group in range(8):
            rows = rng.choice(40, size=5, replace=False)
            cols = rng.choice(40, size=6, replace=False)
            for r in rows:
                dense[r, cols] = 1.0
        m = CSRMatrix.from_dense(dense)
        src = tmp_path / "in.mtx"
        dst = tmp_path / "out.mtx"
        write_matrix_market(src, m)
        assert (
            main(["reorder", "--mtx", str(src), "--out", str(dst), "--panel-height", "4"])
            == 0
        )
        reordered = read_matrix_market(dst)
        assert reordered.shape == m.shape
        assert reordered.nnz == m.nnz
        out = capsys.readouterr().out
        assert "dense ratio" in out

    def test_metis_command(self, capsys):
        assert main(["metis", "--scale", "tiny", "--k", "512"]) == 0
        out = capsys.readouterr().out
        assert "vertex reordering" in out


class TestFigureJsonExport:
    def test_json_dump(self, tmp_path, capsys):
        out_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--out", str(out_path)]) == 0
        )
        fig_path = tmp_path / "fig9.json"
        assert (
            main(["figure", "9", "--records", str(out_path), "--k", "512",
                  "--json", str(fig_path)]) == 0
        )
        data = json.loads(fig_path.read_text())
        assert "delta_dense_ratio" in data and "text" not in data


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        records_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--out", str(records_path)]) == 0
        )
        out_md = tmp_path / "EXP.md"
        assert (
            main(["report", "--records", str(records_path), "--out", str(out_md)]) == 0
        )
        text = out_md.read_text()
        assert "Table 1" in text and "per-category" in text


class TestHtmlReport:
    def test_html_report_from_cli(self, tmp_path, capsys):
        records_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--out", str(records_path)]) == 0
        )
        html_path = tmp_path / "report.html"
        assert (
            main(["report", "--records", str(records_path),
                  "--out", str(tmp_path / "EXP.md"), "--html", str(html_path)]) == 0
        )
        text = html_path.read_text()
        assert text.count("<svg") == 5
        assert "Table 1" in text and "prefers-color-scheme" in text

    def test_render_html_report_direct(self, tmp_path):
        from repro.experiments import (
            ExperimentConfig,
            render_html_report,
            run_experiment,
        )
        from repro.datasets import build_corpus

        entries = build_corpus("tiny", repeats=1, categories=("hidden",))[:2]
        records = run_experiment(
            ExperimentConfig(ks=(512, 1024), scale="tiny", repeats=1),
            entries=entries,
        )
        html = render_html_report(records, mode="dark")
        assert "#1a1a19" in html  # dark figures embedded
        assert "Table 4" in html


class TestAutotuneCommand:
    def test_autotune_mtx(self, tmp_path, capsys):
        from repro.datasets import hidden_clusters
        from repro.sparse import write_matrix_market

        m = hidden_clusters(60, 6, 1024, 12, seed=0)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, m)
        assert main(["autotune", "--mtx", str(path), "--k", "256",
                     "--panel-height", "8"]) == 0
        out = capsys.readouterr().out
        assert "decision:" in out and "modelled spmm" in out


class TestErrorRouting:
    """repro CLI errors map to repro.errors exit codes, not tracebacks."""

    def test_every_subcommand_is_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(subparsers.choices) == set(_HANDLERS)

    def test_missing_mtx_exits_io(self, tmp_path, capsys):
        code = main(["reorder", "--mtx", str(tmp_path / "missing.mtx"),
                     "--out", str(tmp_path / "out.mtx")])
        assert code == EXIT_IO
        err = capsys.readouterr().err
        assert "repro reorder: error" in err

    def test_malformed_mtx_exits_data(self, tmp_path, capsys):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
        code = main(["reorder", "--mtx", str(path),
                     "--out", str(tmp_path / "out.mtx")])
        assert code == EXIT_DATA
        err = capsys.readouterr().err
        assert "FormatError" in err

    def test_missing_records_exits_io(self, tmp_path, capsys):
        code = main(["table", "1", "--records", str(tmp_path / "none.json")])
        assert code == EXIT_IO
        assert "repro table: error" in capsys.readouterr().err

    def test_lint_subcommand_clean_path(self, tmp_path, monkeypatch, capsys):
        good = tmp_path / "fine.py"
        good.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(good)]) == EXIT_OK
        assert "no findings" in capsys.readouterr().out

    def test_lint_subcommand_missing_path_exits_usage(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["lint", str(tmp_path / "gone")])
        assert code == EXIT_USAGE
        err = capsys.readouterr().err
        assert "repro lint: error" in err and "ValidationError" in err

    def test_lint_subcommand_findings_exit_failure(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("y = 2 == 2.0\n")
        monkeypatch.chdir(tmp_path)
        code = main(["lint", str(bad)])
        assert code == 1
        assert "RD201" in capsys.readouterr().out


class TestJobsFlag:
    def test_jobs_parse_default(self):
        args = build_parser().parse_args(["run"])
        assert args.jobs == 1

    def test_run_with_jobs(self, tmp_path):
        out_path = tmp_path / "r.json"
        assert (
            main(["run", "--scale", "tiny", "--repeats", "1", "--k", "512",
                  "--jobs", "2", "--out", str(out_path)]) == 0
        )
        assert out_path.exists()
