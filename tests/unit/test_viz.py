"""Unit tests for repro.viz (SVG chart rendering)."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.viz import PALETTE, figure_svg, nice_ticks, svg_bars, svg_lines, svg_scatter

SVG = "{http://www.w3.org/2000/svg}"


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestNiceTicks:
    def test_unit_interval(self):
        ticks = nice_ticks(0.0, 1.0)
        assert 0.0 in ticks and 1.0 in ticks
        assert ticks == sorted(ticks)

    def test_clean_steps(self):
        ticks = nice_ticks(0.0, 1000.0)
        diffs = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(diffs) == 1
        step = diffs.pop()
        mantissa = step / (10 ** np.floor(np.log10(step)))
        assert round(mantissa, 6) in (1.0, 2.0, 5.0)

    def test_degenerate_range(self):
        assert nice_ticks(3.0, 3.0)
        assert nice_ticks(float("nan"), 1.0) == [0.0]

    def test_inverted_range(self):
        ticks = nice_ticks(5.0, 1.0)
        assert min(ticks) <= 1.0 + 1.0 and max(ticks) >= 4.0

    def test_negative_span(self):
        ticks = nice_ticks(-10.0, 10.0)
        assert any(t < 0 for t in ticks) and any(t > 0 for t in ticks)

    def test_tiny_span_at_huge_magnitude_terminates(self):
        # The 1/2/5 step for a ~1e-7 span near |1e9| is below ulp(1e9),
        # so t += step cannot advance t; the loop must bail rather than
        # append the same tick forever.
        for lo, hi in [(-1e9, -1e9 + 1e-7), (1e9 - 1e-7, 1e9)]:
            ticks = nice_ticks(lo, hi)
            assert 1 <= len(ticks) <= 12
            assert ticks == sorted(ticks)


class TestScatter:
    def test_well_formed_and_marks(self):
        svg = svg_scatter(
            np.array([0.0, 0.5, 1.0]),
            np.array([1.0, 0.0, 0.5]),
            ["up", "down", "up"],
            title="T", x_label="x", y_label="y",
        )
        root = parse(svg)
        circles = root.findall(f".//{SVG}circle")
        polygons = root.findall(f".//{SVG}polygon")
        assert len(circles) == 2  # "up" class -> circles
        assert len(polygons) == 1  # "down" class -> diamonds
        # Native tooltips present on marks.
        assert root.findall(f".//{SVG}title")

    def test_marker_ring_is_surface(self):
        svg = svg_scatter(np.array([0.0]), np.array([0.0]), ["a"], title="T",
                          x_label="x", y_label="y")
        root = parse(svg)
        circle = root.find(f".//{SVG}circle")
        assert circle.get("stroke") == PALETTE["surface"]
        assert circle.get("stroke-width") == "2"

    def test_legend_only_for_two_classes(self):
        one = svg_scatter(np.array([0.0, 1.0]), np.array([0.0, 1.0]), ["a", "a"],
                          title="T", x_label="x", y_label="y")
        two = svg_scatter(np.array([0.0, 1.0]), np.array([0.0, 1.0]), ["a", "b"],
                          title="T", x_label="x", y_label="y")
        # Legend swatches are rect elements beyond the background rect.
        assert len(parse(one).findall(f".//{SVG}rect")) == 1
        assert len(parse(two).findall(f".//{SVG}rect")) == 3

    def test_empty_data(self):
        svg = svg_scatter(np.array([]), np.array([]), [], title="T",
                          x_label="x", y_label="y")
        assert "(no data)" in svg

    def test_text_uses_text_tokens(self):
        svg = svg_scatter(np.array([0.0]), np.array([0.0]), ["a"], title="T",
                          x_label="x", y_label="y")
        root = parse(svg)
        for text in root.findall(f".//{SVG}text"):
            assert text.get("fill") in (PALETTE["text_primary"], PALETTE["text_secondary"])

    def test_coordinates_within_viewbox(self):
        rng = np.random.default_rng(0)
        svg = svg_scatter(rng.normal(size=50), rng.normal(size=50),
                          ["a"] * 50, title="T", x_label="x", y_label="y")
        root = parse(svg)
        for c in root.findall(f".//{SVG}circle"):
            assert 0 <= float(c.get("cx")) <= 640
            assert 0 <= float(c.get("cy")) <= 420


class TestLines:
    def test_series_and_legend(self):
        svg = svg_lines(
            {"first": np.array([1.0, 2.0, 3.0]), "second": np.array([3.0, 2.0, 1.0])},
            title="T", x_label="x", y_label="y",
        )
        root = parse(svg)
        lines = root.findall(f".//{SVG}polyline")
        assert len(lines) == 2
        assert all(pl.get("stroke-width") == "2.0" for pl in lines)
        # Fixed slot order: first series wears slot 1.
        assert lines[0].get("stroke") == PALETTE["series"][0]
        assert lines[1].get("stroke") == PALETTE["series"][1]

    def test_single_series_no_legend(self):
        svg = svg_lines({"only": np.array([1.0, 2.0])}, title="T",
                        x_label="x", y_label="y")
        assert len(parse(svg).findall(f".//{SVG}rect")) == 1  # background only

    def test_log_scale_label(self):
        svg = svg_lines({"s": np.array([1.0, 10.0, 100.0])}, title="T",
                        x_label="x", y_label="y", log_y=True)
        assert "log10" in svg

    def test_empty(self):
        assert "(no data)" in svg_lines({}, title="T", x_label="x", y_label="y")

    def test_end_marker_tooltip_has_raw_value(self):
        svg = svg_lines({"s": np.array([1.0, 1234.0])}, title="T",
                        x_label="x", y_label="y")
        assert "1234" in svg


class TestBars:
    def test_grouped_bars(self):
        svg = svg_bars(
            ["a", "b", "c"],
            {"g1": np.array([1.0, 2.0, 3.0]), "g2": np.array([3.0, 2.0, 1.0])},
            title="T", y_label="%",
        )
        root = parse(svg)
        rects = root.findall(f".//{SVG}rect")
        # background + 6 bars + 2 legend swatches
        assert len(rects) == 9

    def test_bar_width_capped_at_24(self):
        svg = svg_bars(["one"], {"g": np.array([5.0])}, title="T", y_label="y")
        root = parse(svg)
        bars = [r for r in root.findall(f".//{SVG}rect")
                if r.get("fill") in PALETTE["series"]]
        assert bars and float(bars[0].get("width")) <= 24.0

    def test_zero_height_bars_ok(self):
        svg = svg_bars(["a"], {"g": np.array([0.0])}, title="T", y_label="y")
        parse(svg)

    def test_empty(self):
        assert "(no data)" in svg_bars([], {}, title="T", y_label="y")


class TestFigureSvg:
    def test_fig8(self):
        data = {
            "k": 512,
            "bands_nr": {"a": 10.0, "b": 90.0},
            "bands_rr": {"a": 40.0, "b": 60.0},
        }
        parse(figure_svg(8, data))

    def test_fig9(self):
        data = {
            "k": 512,
            "delta_dense_ratio": [0.0, 0.5],
            "delta_avg_sim": [0.1, 0.0],
            "speedup": [1.2, 0.9],
        }
        svg = figure_svg(9, data)
        assert "speedup" in svg and "slowdown" in svg

    def test_fig10_entity_colors(self):
        data = {
            "k": 512,
            "series": {
                "cusparse": [1.0, 2.0],
                "nr(aspt)": [2.0, 3.0],
                "rr(aspt)": [3.0, 4.0],
            },
        }
        svg = figure_svg(10, data)
        root = parse(svg)
        lines = root.findall(f".//{SVG}polyline")
        assert [l.get("stroke") for l in lines] == PALETTE["series"][:3]

    def test_fig11_and_12(self):
        parse(figure_svg(11, {"k": 512, "series": {"nr(aspt)": [1.0], "rr(aspt)": [2.0]}}))
        parse(figure_svg(12, {"times_s": [0.1, 1.0, 10.0]}))

    def test_unknown_figure(self):
        with pytest.raises(ValidationError):
            figure_svg(7, {})


class TestDarkMode:
    def test_dark_palette_selected_not_flipped(self):
        from repro.viz import PALETTE, PALETTE_DARK, get_palette

        assert get_palette("dark") is PALETTE_DARK
        assert PALETTE_DARK["surface"] == "#1a1a19"
        # Dark series are re-stepped values, not the light hex.
        assert PALETTE_DARK["series"][0] != PALETTE["series"][0]

    def test_dark_chart_uses_dark_tokens(self):
        svg = svg_lines(
            {"a": np.array([1.0, 2.0]), "b": np.array([2.0, 1.0])},
            title="T", x_label="x", y_label="y", mode="dark",
        )
        from repro.viz import PALETTE_DARK

        root = parse(svg)
        assert root.find(f"{SVG}rect").get("fill") == PALETTE_DARK["surface"]
        for text in root.findall(f".//{SVG}text"):
            assert text.get("fill") in (
                PALETTE_DARK["text_primary"], PALETTE_DARK["text_secondary"]
            )

    def test_unknown_mode_rejected(self):
        from repro.viz import get_palette

        with pytest.raises(ValueError):
            get_palette("sepia")
