"""Fault injection for the disk tier.

Contract under test: a damaged, stale or contended cache entry must
degrade to a **miss plus a warning** — never a crash, and never a wrong
plan.  Each scenario then verifies the store recovers (a subsequent put
repopulates the key).
"""

import logging
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.datasets import hidden_clusters
from repro.planstore import DiskPlanStore, PlanDecisions, PlanStore
from repro.planstore.fingerprint import PLAN_FORMAT_VERSION
from repro.reorder import ReorderConfig, build_plan

CFG = ReorderConfig(siglen=32, panel_height=8)
KEY = "0123456789abcdef0123456789abcdef"


@pytest.fixture
def matrix():
    return hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)


@pytest.fixture
def decisions(matrix):
    return PlanDecisions.from_plan(build_plan(matrix, CFG))


def _warning_count(caplog):
    return sum(1 for r in caplog.records if r.levelno >= logging.WARNING)


class TestCorruptEntries:
    def test_truncated_file_is_miss_and_quarantined(self, tmp_path, decisions, caplog):
        store = DiskPlanStore(tmp_path)
        store.put(KEY, decisions)
        path = store.path_for(KEY)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])

        with caplog.at_level(logging.WARNING, logger="repro.planstore"):
            assert store.get(KEY) is None
        assert _warning_count(caplog) == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

        # The store recovers: a fresh put serves hits again.
        store.put(KEY, decisions)
        got = store.get(KEY)
        np.testing.assert_array_equal(got.row_order, decisions.row_order)

    def test_garbage_bytes_are_miss(self, tmp_path, decisions, caplog):
        store = DiskPlanStore(tmp_path)
        store.path_for(KEY).write_bytes(b"this is not an npz archive at all")
        with caplog.at_level(logging.WARNING, logger="repro.planstore"):
            assert store.get(KEY) is None
        assert _warning_count(caplog) == 1
        assert store.stats.misses == 1

    def test_flipped_payload_bytes_are_miss(self, tmp_path, decisions, caplog):
        store = DiskPlanStore(tmp_path)
        store.put(KEY, decisions)
        path = store.path_for(KEY)
        raw = bytearray(path.read_bytes())
        mid = len(raw) // 2
        for i in range(mid, min(mid + 64, len(raw))):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))
        with caplog.at_level(logging.WARNING, logger="repro.planstore"):
            assert store.get(KEY) is None

    def test_missing_array_is_miss(self, tmp_path, caplog):
        store = DiskPlanStore(tmp_path)
        np.savez_compressed(
            store.path_for(KEY),
            format_version=np.int64(PLAN_FORMAT_VERSION),
            row_order=np.arange(4),
            # remainder_order / stats / preprocess_total missing
        )
        with caplog.at_level(logging.WARNING, logger="repro.planstore"):
            assert store.get(KEY) is None
        assert _warning_count(caplog) == 1

    def test_malformed_stats_block_is_miss(self, tmp_path, caplog):
        store = DiskPlanStore(tmp_path)
        np.savez_compressed(
            store.path_for(KEY),
            format_version=np.int64(PLAN_FORMAT_VERSION),
            row_order=np.arange(4),
            remainder_order=np.arange(4),
            stats=np.zeros(3),  # wrong shape
            preprocess_total=np.float64(0.1),
        )
        with caplog.at_level(logging.WARNING, logger="repro.planstore"):
            assert store.get(KEY) is None


class TestVersionMismatch:
    def test_other_version_is_miss_and_quarantined(
        self, tmp_path, decisions, caplog
    ):
        store = DiskPlanStore(tmp_path)
        np.savez_compressed(
            store.path_for(KEY),
            format_version=np.int64(PLAN_FORMAT_VERSION + 1),
            row_order=decisions.row_order,
            remainder_order=decisions.remainder_order,
            stats=np.zeros(8),
            preprocess_total=np.float64(0.0),
        )
        with caplog.at_level(logging.WARNING, logger="repro.planstore"):
            assert store.get(KEY) is None
        assert _warning_count(caplog) == 1
        # The entry is unusable by this reader, so it is moved aside like
        # any other unreadable file; the next put replaces it (self-heal).
        assert not store.path_for(KEY).exists()
        assert store.quarantined()
        store.put(KEY, decisions)
        assert store.get(KEY) is not None
        assert not store.quarantined()


class TestEndToEndDegradation:
    def test_corrupt_entry_never_propagates_through_build_plan(
        self, tmp_path, matrix, caplog
    ):
        """build_plan over a corrupted disk entry silently rebuilds and the
        result is bit-identical to an uncached build."""
        store = PlanStore(cache_dir=tmp_path)
        cold = build_plan(matrix, CFG, cache=store)
        path = store.disk.path_for(store.key_for(matrix, CFG))
        path.write_bytes(b"\x00" * 100)

        fresh = PlanStore(cache_dir=tmp_path)  # empty memory tier
        with caplog.at_level(logging.WARNING, logger="repro.planstore"):
            rebuilt = build_plan(matrix, CFG, cache=fresh)
        np.testing.assert_array_equal(rebuilt.row_order, cold.row_order)
        np.testing.assert_array_equal(rebuilt.remainder_order, cold.remainder_order)
        rebuilt.validate()
        assert fresh.stats()["disk"]["misses"] == 1


class TestConcurrentWriters:
    def test_two_processes_racing_on_one_key_leave_a_valid_entry(
        self, tmp_path, decisions
    ):
        """Two processes repeatedly writing the same key must never leave a
        torn file: afterwards the entry reads back complete and valid."""
        script = """
import sys
from repro.datasets import hidden_clusters
from repro.planstore import DiskPlanStore, PlanDecisions
from repro.reorder import ReorderConfig, build_plan

root, key = sys.argv[1], sys.argv[2]
m = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)
decisions = PlanDecisions.from_plan(
    build_plan(m, ReorderConfig(siglen=32, panel_height=8))
)
store = DiskPlanStore(root)
for _ in range(30):
    store.put(key, decisions)
print("done")
"""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = (
            os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), KEY],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for p in procs:
            out, err = p.communicate(timeout=120)
            assert p.returncode == 0, err
            assert "done" in out

        store = DiskPlanStore(tmp_path)
        got = store.get(KEY)
        assert got is not None
        np.testing.assert_array_equal(got.row_order, decisions.row_order)
        np.testing.assert_array_equal(
            got.remainder_order, decisions.remainder_order
        )
        # No temp-file litter left behind by either writer.
        assert not list(tmp_path.glob("*.tmp"))


class TestPathHygiene:
    def test_traversal_like_keys_rejected(self, tmp_path):
        store = DiskPlanStore(tmp_path)
        for bad in ("", "../evil", "a/b", "a.b", "a\\b"):
            with pytest.raises(ValueError):
                store.path_for(bad)

    def test_unwritable_directory_put_degrades(self, tmp_path, decisions, caplog):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        store = DiskPlanStore(tmp_path)
        os.chmod(tmp_path, 0o500)
        try:
            with caplog.at_level(logging.WARNING, logger="repro.planstore"):
                store.put(KEY, decisions)  # must not raise
            assert store.get(KEY) is None
        finally:
            os.chmod(tmp_path, 0o700)
