"""Determinism regression tests.

The plan store is only sound if the pipeline is a pure function of
(pattern, config): the same matrix and seed must give byte-identical
permutations and fingerprints in *any* process — different Python hash
seeds included — and the parallel batch front end must reproduce the
serial output exactly.
"""

import os
import subprocess
import sys

import numpy as np

from repro.datasets import bipartite_ratings, hidden_clusters, rmat
from repro.planstore import build_plans, pattern_fingerprint, plan_key
from repro.reorder import ReorderConfig, build_plan

CFG = ReorderConfig(siglen=32, panel_height=8)

#: Script run in fresh interpreters: builds the canonical test plan and
#: prints (plan key, pattern fingerprint, digests of both permutations).
_CHILD_SCRIPT = """
import hashlib
from repro.datasets import hidden_clusters
from repro.planstore import pattern_fingerprint, plan_key
from repro.reorder import ReorderConfig, build_plan

m = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)
cfg = ReorderConfig(siglen=32, panel_height=8)
plan = build_plan(m, cfg)
print(plan_key(m, cfg))
print(pattern_fingerprint(m))
print(hashlib.blake2b(plan.row_order.tobytes()).hexdigest())
print(hashlib.blake2b(plan.remainder_order.tobytes()).hexdigest())
"""


def _run_child(hash_seed: str) -> list[str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip().splitlines()


class TestCrossProcessDeterminism:
    def test_two_fresh_processes_agree_bit_for_bit(self):
        """Same matrix + same seed => identical permutations and
        fingerprints across two fresh processes with *different* Python
        hash seeds (so nothing leaks through dict/set ordering)."""
        a = _run_child("0")
        b = _run_child("1")
        assert a == b
        assert len(a) == 4 and all(line for line in a)

    def test_parent_process_agrees_with_children(self):
        m = hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)
        child = _run_child("0")
        assert child[0] == plan_key(m, CFG)
        assert child[1] == pattern_fingerprint(m)


class TestParallelMatchesSerial:
    def test_build_plans_workers4_identical_to_serial(self):
        matrices = [
            hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7),
            rmat(8, 8, seed=1),
            bipartite_ratings(200, 150, 10, seed=2),
            hidden_clusters(8, 4, 64, 6, noise=0.0, seed=3),
        ]
        serial = [build_plan(m, CFG) for m in matrices]
        results = build_plans(matrices, CFG, workers=4)
        assert all(r.ok for r in results)
        for got, want in zip(results, serial):
            np.testing.assert_array_equal(got.plan.row_order, want.row_order)
            np.testing.assert_array_equal(
                got.plan.remainder_order, want.remainder_order
            )
            assert got.plan.stats == want.stats
            assert got.plan.tiled.sparse_part.same_pattern(
                want.tiled.sparse_part
            )

    def test_repeated_serial_builds_identical(self):
        m = rmat(8, 8, seed=5)
        p1, p2 = build_plan(m, CFG), build_plan(m, CFG)
        assert p1.row_order.tobytes() == p2.row_order.tobytes()
        assert p1.remainder_order.tobytes() == p2.remainder_order.tobytes()
