"""Concurrency properties of the primitives the serve layer leans on.

Two invariants the server's correctness story depends on, exercised with
real thread contention:

* a :class:`~repro.resilience.Deadline` never *un-expires* — once any
  observer has seen ``expired() == True`` every later observation agrees,
  even when the injected clock moves backwards (NTP step, test clock
  reuse) and many threads race on the same instance;
* :class:`~repro.util.workspace.WorkspacePool` counters exactly balance —
  every lease is a hit or a miss, every returned block is parked or
  evicted, and no block is lost or double-parked under concurrent
  take/give from many threads.
"""

import threading

import numpy as np
import pytest

from repro.errors import TimeoutExceeded
from repro.resilience import Deadline
from repro.serve import SessionPool
from repro.util.workspace import WorkspacePool

from conftest import FakeClock


class TestDeadlineNeverUnexpires:
    def test_backwards_clock_cannot_resurrect_a_deadline(self):
        clock = FakeClock(start=0.0, step=0.0)
        deadline = Deadline.after(5.0, clock=clock)
        assert not deadline.expired()
        clock.advance(10.0)  # past the budget
        assert deadline.expired()
        clock.advance(-10.0)  # clock steps backwards below the budget
        assert deadline.expired()  # latched: still expired
        with pytest.raises(TimeoutExceeded):
            deadline.check("stage")

    def test_remaining_may_disagree_but_expired_is_latched(self):
        clock = FakeClock(start=0.0, step=0.0)
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(2.0)
        assert deadline.expired()
        clock.advance(-2.0)
        assert deadline.remaining() > 0  # raw arithmetic view
        assert deadline.expired()  # the decision is latched anyway

    def test_unexpired_deadline_stays_unexpired_while_budget_remains(self):
        clock = FakeClock(start=0.0, step=0.0)
        deadline = Deadline.after(100.0, clock=clock)
        for _ in range(10):
            clock.advance(1.0)
            assert not deadline.expired()

    def test_many_threads_agree_once_anyone_saw_expiry(self):
        # A shared clock that wobbles: each read jitters +/- around a
        # slowly advancing base, crossing the deadline repeatedly from
        # both sides.  The property: after the first True observation,
        # no thread ever observes False again.
        lock = threading.Lock()
        state = {"base": 0.0, "n": 0}

        def wobbly_clock():
            with lock:
                state["n"] += 1
                state["base"] += 0.001
                jitter = ((state["n"] * 2654435761) % 1000) / 1000.0 - 0.5
                return state["base"] + jitter

        deadline = Deadline.after(1.0, clock=wobbly_clock)
        saw_expired = threading.Event()
        violations = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(2000):
                value = deadline.expired()
                if value:
                    saw_expired.set()
                elif saw_expired.is_set():
                    violations.append("un-expired after expiry was observed")
                    return

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert saw_expired.is_set()  # the wobble did cross the deadline
        assert violations == []


class TestWorkspacePoolCounterBalance:
    def test_counters_balance_under_concurrent_lease_release(self):
        pool = WorkspacePool(max_bytes=1 << 30)  # big enough: no evictions
        threads_n, iterations = 8, 300
        shapes = [(16,), (64,), (33, 4), (128,), (7, 7)]
        errors = []
        barrier = threading.Barrier(threads_n)

        def worker(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for i in range(iterations):
                    shape = shapes[int(rng.integers(len(shapes)))]
                    block = pool.take(shape)
                    block.fill(float(i))  # touch it: catches aliased blocks
                    if not np.all(block == float(i)):
                        errors.append("leased block aliased by another thread")
                    pool.give(block)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        stats = pool.stats()
        total = threads_n * iterations
        # Every lease was exactly one hit or one miss...
        assert stats["hits"] + stats["misses"] == total
        # ...and with an unbounded pool nothing was evicted, so every
        # returned block is parked: held bytes equal the misses' blocks
        # (each miss allocated one block; hits recycled parked ones).
        assert stats["evictions"] == 0
        assert stats["held_bytes"] > 0
        # Freelists now hold exactly the allocated (miss) blocks: drain
        # them and count.
        parked = sum(len(blocks) for blocks in pool._free.values())
        assert parked == stats["misses"]

    def test_eviction_accounting_balances_with_a_tiny_pool(self):
        itemsize = np.dtype(np.float64).itemsize
        pool = WorkspacePool(max_bytes=64 * itemsize)  # one 64-elem block
        threads_n, iterations = 4, 200
        barrier = threading.Barrier(threads_n)

        def worker():
            barrier.wait()
            for _ in range(iterations):
                # Two live leases against a one-block budget: at most one
                # can park on return, so the other must be evicted.
                first = pool.take((64,))
                second = pool.take((64,))
                pool.give(first)
                pool.give(second)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = pool.stats()
        total = 2 * threads_n * iterations
        assert stats["hits"] + stats["misses"] == total
        assert stats["evictions"] > 0
        # Conservation: every allocated (miss) block is either parked in
        # a freelist right now or was dropped as an eviction on return.
        parked = sum(len(blocks) for blocks in pool._free.values())
        assert parked + stats["evictions"] == stats["misses"]
        assert stats["held_bytes"] <= pool.max_bytes


class TestSessionPoolPinBalance:
    class _Session:
        def close(self):
            pass

    def test_refcounts_return_to_zero_under_concurrent_pin_unpin(self):
        pool = SessionPool(capacity=4, shards=2)
        keys = [f"matrix-{i}:full" for i in range(6)]  # > capacity: evicts
        threads_n, iterations = 8, 250
        errors = []
        barrier = threading.Barrier(threads_n)

        def worker(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for _ in range(iterations):
                    key = keys[int(rng.integers(len(keys)))]
                    entry = pool.pin(key)
                    if entry is None:
                        entry = pool.put(
                            key,
                            self._Session(),
                            rung="full",
                            provenance=("full: ok",),
                            backend="numpy",
                            degraded=False,
                        )
                    if entry.refs < 1:
                        errors.append(f"pinned entry {key} with refs < 1")
                    pool.unpin(entry)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        occupancy = pool.occupancy()
        # Every pin was matched by an unpin: nothing is left pinned.
        assert occupancy["pinned"] == 0
        assert all(
            entry["refs"] == 0
            for shard in occupancy["shards"]
            for entry in shard["keys"]
        )
        # clear() only evicts refs == 0 entries, so an empty pool after
        # clear proves no pin leaked anywhere.
        pool.clear()
        assert len(pool) == 0
