"""Unit tests for repro.datasets."""

import numpy as np
import pytest

from repro.datasets import (
    banded,
    bipartite_ratings,
    block_diagonal,
    build_corpus,
    corpus_summary,
    diagonal,
    get_generator,
    hidden_clusters,
    list_generators,
    power_law_rows,
    preclustered,
    rmat,
    small_world,
    uniform_random,
)
from repro.errors import DatasetError
from repro.similarity import average_consecutive_similarity
from repro.sparse import bandwidth, structural_summary


class TestSyntheticGenerators:
    def test_uniform_random_shape_and_fill(self):
        m = uniform_random(100, 80, 5, seed=0)
        assert m.shape == (100, 80)
        assert 0 < m.nnz <= 500
        m.validate()

    def test_uniform_deterministic(self):
        a = uniform_random(50, 50, 4, seed=7)
        b = uniform_random(50, 50, 4, seed=7)
        assert a.allclose(b)

    def test_banded_bandwidth(self):
        m = banded(60, 2, seed=0)
        assert bandwidth(m) == 2
        assert m.nnz == 60 * 5 - 2 * (1 + 2)

    def test_banded_zero_band_is_diagonal(self):
        m = banded(10, 0, seed=0)
        assert m.nnz == 10 and bandwidth(m) == 0

    def test_diagonal(self):
        m = diagonal(30, seed=0)
        assert m.nnz == 30
        assert average_consecutive_similarity(m) == 0.0

    def test_block_diagonal_structure(self):
        m = block_diagonal(4, 10, fill=1.0, seed=0)
        dense = m.to_dense()
        assert dense[0, 15] == 0.0  # off-block is empty
        assert (dense[:10, :10] != 0).all()

    def test_block_diagonal_invalid_fill(self):
        with pytest.raises(ValueError):
            block_diagonal(2, 5, fill=0.0)

    def test_power_law_rows_skew(self):
        m = power_law_rows(500, 500, 10, seed=0)
        lengths = m.row_lengths()
        assert lengths.max() > 3 * lengths.mean()
        assert m.nnz > 0

    def test_power_law_invalid_alpha(self):
        with pytest.raises(ValueError):
            power_law_rows(10, 10, 5, alpha=1.0)


class TestClusteredGenerators:
    def test_hidden_clusters_low_consecutive_similarity(self):
        m = hidden_clusters(32, 16, 1024, 16, noise=0.0, seed=0)
        # Shuffled: consecutive rows rarely share a cluster.
        assert average_consecutive_similarity(m) < 0.2

    def test_preclustered_high_consecutive_similarity(self):
        m = preclustered(32, 16, 1024, 16, noise=0.0, seed=0)
        assert average_consecutive_similarity(m) > 0.9

    def test_same_structure_different_order(self):
        # Both generators produce the same nnz distribution.
        h = hidden_clusters(16, 8, 256, 12, noise=0.0, seed=3)
        p = preclustered(16, 8, 256, 12, noise=0.0, seed=3)
        assert h.shape == p.shape
        assert np.sort(h.row_lengths()).tolist() == np.sort(p.row_lengths()).tolist()

    def test_noise_reduces_similarity(self):
        clean = preclustered(16, 8, 512, 16, noise=0.0, seed=1)
        noisy = preclustered(16, 8, 512, 16, noise=0.4, seed=1)
        assert (
            average_consecutive_similarity(noisy)
            < average_consecutive_similarity(clean)
        )

    def test_deterministic(self):
        a = hidden_clusters(8, 8, 128, 8, seed=5)
        b = hidden_clusters(8, 8, 128, 8, seed=5)
        assert a.allclose(b)


class TestGraphGenerators:
    def test_rmat_shape(self):
        m = rmat(8, 8, seed=0)
        assert m.shape == (256, 256)
        assert m.nnz > 0
        m.validate()

    def test_rmat_power_law_degrees(self):
        m = rmat(10, 16, seed=0)
        lengths = m.row_lengths()
        assert lengths.max() > 5 * max(1.0, np.median(lengths))

    def test_rmat_invalid_quadrants(self):
        with pytest.raises(ValueError):
            rmat(5, 4, a=0.7, b=0.3, c=0.2)

    def test_small_world_symmetric(self):
        m = small_world(100, 3, 0.0, seed=0)
        dense = m.to_dense()
        np.testing.assert_allclose(dense != 0, (dense != 0).T)

    def test_small_world_no_rewire_is_preclustered(self):
        m = small_world(200, 4, 0.0, seed=0)
        assert average_consecutive_similarity(m) > 0.3

    def test_small_world_invalid_k(self):
        with pytest.raises(ValueError):
            small_world(10, 5, 0.1)

    def test_bipartite_shape(self):
        m = bipartite_ratings(200, 150, 10, seed=0)
        assert m.shape == (200, 150)
        assert m.nnz > 0
        m.validate()

    def test_bipartite_taste_groups_create_row_similarity(self):
        from repro.similarity import pairwise_jaccard_dense

        m = bipartite_ratings(60, 200, 15, n_taste_groups=3, concentration=1.0, seed=0)
        full = pairwise_jaccard_dense(m)
        np.fill_diagonal(full, 0.0)
        assert full.max() > 0.3


class TestCorpus:
    def test_build_tiny_corpus(self):
        entries = build_corpus("tiny", repeats=1)
        assert len(entries) >= 20
        names = [e.name for e in entries]
        assert len(set(names)) == len(names)
        for e in entries:
            e.matrix.validate()
            assert e.matrix.nnz > 0

    def test_categories_filter(self):
        entries = build_corpus("tiny", repeats=1, categories=("hidden",))
        assert all(e.category == "hidden" for e in entries)
        assert len(entries) >= 3

    def test_unknown_scale(self):
        with pytest.raises(DatasetError):
            build_corpus("gigantic")

    def test_unknown_category(self):
        with pytest.raises(DatasetError):
            build_corpus("tiny", categories=("nope",))

    def test_bad_repeats(self):
        with pytest.raises(DatasetError):
            build_corpus("tiny", repeats=0)

    def test_deterministic(self):
        a = build_corpus("tiny", repeats=1, categories=("uniform",))
        b = build_corpus("tiny", repeats=1, categories=("uniform",))
        for x, y in zip(a, b):
            assert x.name == y.name
            assert x.matrix.allclose(y.matrix)

    def test_summary(self):
        entries = build_corpus("tiny", repeats=1, categories=("diagonal", "hidden"))
        rows = corpus_summary(entries)
        assert len(rows) == len(entries)
        assert all("nnz" in r and "category" in r for r in rows)

    def test_expected_benefit_classes_present(self):
        entries = build_corpus("tiny", repeats=1)
        benefits = {e.expected_benefit for e in entries}
        assert {"none", "high"} <= benefits


class TestRegistry:
    def test_lookup(self):
        gen = get_generator("diagonal")
        assert gen(5).nnz == 5

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            get_generator("nope")

    def test_list_generators(self):
        names = list_generators()
        assert "rmat" in names and names == sorted(names)
