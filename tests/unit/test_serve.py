"""Unit tests for the serving layer (repro.serve).

Pure-logic pieces (protocol codec, token buckets, shed controller,
breaker, session pool, coalescer) are tested directly with injected
clocks; the server itself is exercised end-to-end over real sockets via
:class:`repro.serve.ServerThread` — the suite has no async runner, so
the event loop lives on a background thread and every test crosses the
genuine wire path.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigError, FormatError, ReproIOError, ValidationError
from repro.resilience import FaultInjector
from repro.serve import (
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_REJECTED_QUOTA,
    AdmissionController,
    CircuitBreaker,
    Coalescer,
    LoadShedController,
    ServeClient,
    ServeConfig,
    ServerThread,
    SessionPool,
    TokenBucket,
    decode_message,
    encode_message,
    matrix_fingerprint,
    matrix_from_wire,
    matrix_to_wire,
    parse_address,
)

from conftest import FakeClock, random_csr


class ManualClock(FakeClock):
    """A FakeClock that only moves when told to (step 0)."""

    def __init__(self, start: float = 0.0):
        super().__init__(start=start, step=0.0)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_message_round_trip(self):
        msg = {"op": "ping", "id": 3, "nested": {"a": [1.5, None, "x"]}}
        assert decode_message(encode_message(msg)) == msg

    def test_encode_is_one_compact_line(self):
        data = encode_message({"b": 1, "a": 2})
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert data.index(b'"a"') < data.index(b'"b"')  # sorted keys

    @pytest.mark.parametrize(
        "line", [b"not json\n", b"[1,2]\n", b"42\n", b"\xff\xfe\n"]
    )
    def test_decode_rejects_non_object_lines(self, line):
        with pytest.raises(FormatError):
            decode_message(line)

    def test_matrix_wire_round_trip_is_bitwise(self, rng):
        csr = random_csr(rng, 30, 20, density=0.15)
        back = matrix_from_wire(decode_message(encode_message(matrix_to_wire(csr))))
        np.testing.assert_array_equal(back.rowptr, csr.rowptr)
        np.testing.assert_array_equal(back.colidx, csr.colidx)
        np.testing.assert_array_equal(back.values, csr.values)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("shape"),
            lambda d: d.update(shape=[2]),
            lambda d: d.update(rows="nope"),
            lambda d: d.update(values=d["values"][:-1]),
        ],
    )
    def test_matrix_from_wire_rejects_malformed_payloads(self, rng, mutate):
        payload = matrix_to_wire(random_csr(rng, 10, 10))
        mutate(payload)
        with pytest.raises(FormatError):
            matrix_from_wire(payload)

    def test_fingerprint_depends_on_values(self, rng):
        csr = random_csr(rng, 25, 25, density=0.1)
        doubled = csr.with_values(csr.values * 2.0)
        assert matrix_fingerprint(csr) == matrix_fingerprint(csr)
        assert matrix_fingerprint(csr) != matrix_fingerprint(doubled)

    def test_fingerprint_survives_the_wire(self, rng):
        csr = random_csr(rng, 25, 25, density=0.1)
        back = matrix_from_wire(
            decode_message(encode_message(matrix_to_wire(csr)))
        )
        assert matrix_fingerprint(back) == matrix_fingerprint(csr)


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(1.0)  # +2 tokens
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_tokens_capped_at_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


class TestAdmissionController:
    def _controller(self, clock, **kw):
        kw.setdefault("max_inflight", 2)
        kw.setdefault("quota_rate", 1.0)
        kw.setdefault("quota_burst", 2.0)
        return AdmissionController(clock=clock, **kw)

    def test_overload_checked_before_quota(self):
        clock = ManualClock()
        ctl = self._controller(clock)
        assert ctl.admit("a") is None
        assert ctl.admit("a") is None
        # Slots full: rejection is overload, and the tenant is NOT charged.
        tokens_before = ctl.snapshot()["tenants"]["a"]
        assert ctl.admit("a") == "rejected_overload"
        assert ctl.snapshot()["tenants"]["a"] == tokens_before
        ctl.release()
        ctl.release()

    def test_quota_rejection_and_refill(self):
        clock = ManualClock()
        ctl = self._controller(clock, max_inflight=100)
        assert ctl.admit("t") is None
        assert ctl.admit("t") is None
        assert ctl.admit("t") == STATUS_REJECTED_QUOTA
        clock.advance(1.0)
        assert ctl.admit("t") is None
        for _ in range(3):
            ctl.release()

    def test_tenants_are_isolated(self):
        clock = ManualClock()
        ctl = self._controller(clock, max_inflight=100)
        while ctl.admit("greedy") is None:
            pass
        assert ctl.admit("greedy") == STATUS_REJECTED_QUOTA
        assert ctl.admit("modest") is None  # unaffected by the other bucket

    def test_per_tenant_quota_override(self):
        clock = ManualClock()
        ctl = self._controller(
            clock, max_inflight=100, tenant_quotas={"vip": (10.0, 5.0)}
        )
        granted = 0
        while ctl.admit("vip") is None:
            granted += 1
        assert granted == 5  # vip burst, not the 2.0 default

    def test_release_without_admit_raises(self):
        ctl = self._controller(ManualClock())
        with pytest.raises(AssertionError):
            ctl.release()


# ----------------------------------------------------------------------
# Shedding + breaker
# ----------------------------------------------------------------------
class TestLoadShedController:
    def test_depth_thresholds_map_to_rungs(self):
        shed = LoadShedController(depths=(2, 4, 6))
        assert [shed.rung_for(d) for d in (0, 1, 2, 3, 4, 5, 6, 99)] == [
            0, 0, 1, 1, 2, 2, 3, 3,
        ]

    def test_p95_slo_sheds_one_extra_rung(self):
        shed = LoadShedController(depths=(2, 4, 6), slo_p95_s=0.1, window=8)
        for _ in range(8):
            shed.observe(0.5)  # p95 well above the SLO
        assert shed.rung_for(0) == 1
        assert shed.rung_for(6) == 3  # capped at the ladder floor

    def test_p95_none_until_observations(self):
        shed = LoadShedController(slo_p95_s=0.1)
        assert shed.p95() is None
        assert shed.rung_for(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadShedController(depths=(4, 2))
        with pytest.raises(ValueError):
            LoadShedController(depths=(1, 2, 3, 4))


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = ManualClock()
        breaker = CircuitBreaker(threshold=3, reset_s=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=ManualClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_single_trial_then_close_or_reopen(self):
        clock = ManualClock()
        breaker = CircuitBreaker(threshold=1, reset_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the half-open trial
        assert not breaker.allow()  # only one trial at a time
        breaker.record_failure()  # trial failed -> re-open
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_snapshot_reports_open_interval(self):
        clock = ManualClock()
        breaker = CircuitBreaker(threshold=1, reset_s=30.0, clock=clock)
        breaker.record_failure()
        clock.advance(4.0)
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["open_for_s"] == pytest.approx(4.0)


# ----------------------------------------------------------------------
# Session pool
# ----------------------------------------------------------------------
class FakeSession:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def _put(pool, key, **kw):
    kw.setdefault("rung", "full")
    kw.setdefault("provenance", ("full: ok",))
    kw.setdefault("backend", "numpy")
    kw.setdefault("degraded", False)
    return pool.put(key, FakeSession(), **kw)


class TestSessionPool:
    def test_miss_then_hit(self):
        pool = SessionPool(capacity=4, shards=1)
        assert pool.pin("absent") is None
        entry = _put(pool, "k1")
        pool.unpin(entry)
        again = pool.pin("k1")
        assert again is entry
        pool.unpin(again)

    def test_lru_eviction_closes_the_victim(self):
        pool = SessionPool(capacity=2, shards=1)
        a = _put(pool, "a"); pool.unpin(a)
        b = _put(pool, "b"); pool.unpin(b)
        pool.pin("a")  # refresh a; b is now LRU
        pool.unpin(a)
        c = _put(pool, "c"); pool.unpin(c)
        assert b.session.closed
        assert pool.pin("b") is None
        assert pool.pin("a") is not None

    def test_pinned_entries_survive_eviction_pressure(self):
        pool = SessionPool(capacity=1, shards=1)
        pinned = _put(pool, "hot")  # stays pinned
        other = _put(pool, "cold")
        assert not pinned.session.closed
        assert len(pool) == 2  # transient overflow instead of a yank
        pool.unpin(pinned)
        pool.unpin(other)

    def test_racing_put_keeps_the_resident_entry(self):
        pool = SessionPool(capacity=4, shards=1)
        first = _put(pool, "k")
        second = _put(pool, "k")
        assert second is first
        assert first.refs == 2
        pool.unpin(first)
        pool.unpin(first)

    def test_invalidate_prefix_evicts_all_rungs_of_a_matrix(self):
        pool = SessionPool(capacity=8, shards=2)
        full = _put(pool, "fp1:full"); pool.unpin(full)
        ident = _put(pool, "fp1:identity"); pool.unpin(ident)
        other = _put(pool, "fp2:full"); pool.unpin(other)
        assert pool.invalidate_prefix("fp1") == 2
        assert full.session.closed and ident.session.closed
        assert pool.pin("fp1:full") is None
        assert pool.pin("fp2:full") is other  # untouched
        pool.unpin(other)

    def test_invalidate_prefix_leaves_pinned_entries_running(self):
        pool = SessionPool(capacity=8, shards=1)
        busy = _put(pool, "fp1:full")  # still pinned: a request is running
        assert pool.invalidate_prefix("fp1") == 1
        assert not busy.session.closed  # finishes on the detached session
        assert pool.pin("fp1:full") is None  # but no new pins find it
        pool.unpin(busy)

    def test_unpin_without_pin_raises(self):
        pool = SessionPool(capacity=4, shards=1)
        entry = _put(pool, "k")
        pool.unpin(entry)
        with pytest.raises(AssertionError):
            pool.unpin(entry)

    def test_occupancy_snapshot(self):
        pool = SessionPool(capacity=4, shards=2)
        entry = _put(pool, "k1", rung="identity", backend="numpy")
        occ = pool.occupancy()
        assert occ["capacity"] == 4 and occ["entries"] == 1 and occ["pinned"] == 1
        keys = [k for shard in occ["shards"] for k in shard["keys"]]
        assert keys == [
            {"key": "k1", "rung": "identity", "refs": 1, "backend": "numpy"}
        ]
        pool.unpin(entry)

    def test_eviction_fault_is_absorbed(self):
        pool = SessionPool(capacity=1, shards=1)
        a = _put(pool, "a"); pool.unpin(a)
        with FaultInjector(rate=1.0, seed=7, sites=["serve.pool_evict"]):
            b = _put(pool, "b")  # evicts a; injected fault must not escape
            pool.unpin(b)
        assert pool.pin("a") is None  # eviction still happened
        assert not a.session.closed  # fault fired before close()

    def test_clear_leaves_pinned_entries(self):
        pool = SessionPool(capacity=4, shards=2)
        held = _put(pool, "held")
        loose = _put(pool, "loose"); pool.unpin(loose)
        pool.clear()
        assert len(pool) == 1 and not held.session.closed
        assert loose.session.closed
        pool.unpin(held)

    def test_sharding_is_hashseed_independent(self):
        # BLAKE2b placement: the same keys land in the same shards in
        # every process, whatever PYTHONHASHSEED says.
        pool = SessionPool(capacity=8, shards=4)
        placements = [pool._shard_for(f"key{i}") for i in range(16)]
        again = [pool._shard_for(f"key{i}") for i in range(16)]
        assert placements == again


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_submits_share_one_batch(self):
        async def scenario():
            coalescer = Coalescer()
            batches = []
            started = asyncio.Event()

            async def execute(key, members):
                batches.append(list(members))
                started.set()
                await asyncio.sleep(0.02)  # hold the key so others queue up
                return [m * 10 for m in members]

            first = asyncio.create_task(coalescer.submit("k", 1, execute))
            await started.wait()  # leader is mid-execute
            rest = [
                asyncio.create_task(coalescer.submit("k", n, execute))
                for n in (2, 3)
            ]
            results = await asyncio.gather(first, *rest)
            return batches, results

        batches, results = self._run(scenario())
        assert results == [10, 20, 30]
        assert [1] in batches
        assert [2, 3] in batches  # the queued pair rode one batch

    def test_exception_reaches_every_member(self):
        async def scenario():
            coalescer = Coalescer()

            async def execute(key, members):
                raise ReproIOError("batch blew up")

            tasks = [
                asyncio.create_task(coalescer.submit("k", n, execute))
                for n in (1, 2)
            ]
            out = []
            for task in tasks:
                with pytest.raises(ReproIOError):
                    await task
                out.append(True)
            return out

        assert self._run(scenario()) == [True, True]

    def test_distinct_keys_do_not_serialise(self):
        async def scenario():
            coalescer = Coalescer()
            order = []

            async def execute(key, members):
                order.append(("start", key))
                await asyncio.sleep(0.01)
                order.append(("end", key))
                return members

            await asyncio.gather(
                coalescer.submit("a", 1, execute),
                coalescer.submit("b", 2, execute),
            )
            return order

        order = self._run(scenario())
        assert order[0][0] == "start" and order[1][0] == "start"  # overlapped


# ----------------------------------------------------------------------
# Config + address parsing
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_validate(self):
        ServeConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"pool_sessions": 0},
            {"workers": 0},
            {"quota_rate": 0.0},
            {"shed_depths": (5, 3)},
            {"shed_depths": (1, 2, 3, 4)},
            {"default_deadline_s": 0.0},
            {"backend": "no-such-backend"},
        ],
    )
    def test_invalid_values_raise_config_error(self, kw):
        with pytest.raises((ConfigError, Exception)):
            ServeConfig(**kw)

    def test_address_forms(self):
        assert ServeConfig(host="h", port=9).address() == ("h", 9)
        assert ServeConfig(unix_path="/tmp/x.sock").address() == "/tmp/x.sock"


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.1:7077") == ("10.0.0.1", 7077)
        assert parse_address(":7077") == ("127.0.0.1", 7077)

    def test_unix_path(self):
        assert parse_address("/run/repro.sock") == "/run/repro.sock"

    @pytest.mark.parametrize("bad", ["nocolon", "host:notaport"])
    def test_invalid(self, bad):
        with pytest.raises(ValidationError):
            parse_address(bad)


# ----------------------------------------------------------------------
# End-to-end over real sockets
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served(request):
    """One shared server + reference plan for the end-to-end tests."""
    rng = np.random.default_rng(777)
    csr = random_csr(rng, 48, 36, density=0.12)
    config = ServeConfig(port=0, workers=2, panel_height=8, chunk_k=16)
    from repro.reorder import build_plan

    plan = build_plan(csr, config.reorder_config())
    thread = ServerThread(config).start()
    yield {"thread": thread, "csr": csr, "plan": plan, "rng": rng}
    thread.stop()


class TestServerEndToEnd:
    def test_ping(self, served):
        with ServeClient(served["thread"].address) as client:
            resp = client.ping()
            assert resp["status"] == STATUS_OK and resp["pong"] is True

    def test_upload_then_spmm_is_bitwise_vs_plan_session(self, served):
        csr, plan = served["csr"], served["plan"]
        X = np.asarray(served["rng"].random((csr.n_cols, 40)), dtype=np.float64)
        expected = plan.session(chunk_k=16).run(X).copy()
        with ServeClient(served["thread"].address) as client:
            fingerprint = client.upload(csr)["fingerprint"]
            resp = client.spmm(X, fingerprint=fingerprint, request_id=11)
            assert resp["status"] == STATUS_OK
            assert resp["id"] == 11
            assert resp["rung"] == "full" and resp["degraded"] is False
            np.testing.assert_array_equal(
                ServeClient.result_array(resp), expected
            )

    def test_inline_matrix_spmm(self, served):
        csr, plan = served["csr"], served["plan"]
        X = np.asarray(served["rng"].random((csr.n_cols, 3)), dtype=np.float64)
        expected = plan.session(chunk_k=16).run(X).copy()
        with ServeClient(served["thread"].address) as client:
            resp = client.spmm(X, matrix=csr)
            assert resp["status"] == STATUS_OK
            np.testing.assert_array_equal(
                ServeClient.result_array(resp), expected
            )

    def test_unknown_fingerprint_is_not_found(self, served):
        X = np.ones((served["csr"].n_cols, 2))
        with ServeClient(served["thread"].address) as client:
            resp = client.spmm(X, fingerprint="deadbeef")
            assert resp["status"] == STATUS_NOT_FOUND

    def test_missing_operand_is_an_error(self, served):
        with ServeClient(served["thread"].address) as client:
            resp = client.request({"op": "spmm", "fingerprint": "x"})
            assert resp["status"] in (STATUS_ERROR, STATUS_NOT_FOUND)
            resp = client.request({"op": "spmm"})
            assert resp["status"] == STATUS_ERROR

    def test_malformed_line_gets_error_response_not_disconnect(self, served):
        with ServeClient(served["thread"].address) as client:
            client._sock.sendall(b"this is not json\n")
            resp = decode_message(client._file.readline())
            assert resp["status"] == STATUS_ERROR
            assert client.ping()["status"] == STATUS_OK  # connection survives

    def test_unknown_op_is_an_error(self, served):
        with ServeClient(served["thread"].address) as client:
            resp = client.request({"op": "explode"})
            assert resp["status"] == STATUS_ERROR and "unknown op" in resp["error"]

    def test_expired_deadline_is_reported_not_wrong(self, served):
        csr = served["csr"]
        X = np.ones((csr.n_cols, 4))
        with ServeClient(served["thread"].address) as client:
            fingerprint = client.upload(csr)["fingerprint"]
            resp = client.spmm(X, fingerprint=fingerprint, deadline_s=1e-9)
            assert resp["status"] == STATUS_DEADLINE_EXCEEDED
            assert "result" not in resp

    def test_health_and_metrics(self, served):
        with ServeClient(served["thread"].address) as client:
            health = client.health()
            assert health["ready"] is True and health["draining"] is False
            assert health["pool"]["capacity"] == 8
            assert "in_flight" in health["admission"]
            assert health["breaker"]["state"] == "closed"
            metrics = client.metrics()
            assert metrics["status"] == STATUS_OK
            assert "serve.requests" in metrics["metrics"]
            assert metrics["metrics"]["serve.requests"] >= 1


@pytest.fixture()
def delta_served(rng):
    """A dedicated server per test: delta requests mutate the registry."""
    csr = random_csr(rng, 32, 24, density=0.15)
    config = ServeConfig(port=0, workers=2, panel_height=8, chunk_k=16)
    thread = ServerThread(config).start()
    yield {"thread": thread, "csr": csr, "rng": rng}
    thread.stop()


class TestServerDelta:
    def _delta(self, csr, rng, k=5):
        from repro.streaming import DeltaBatch

        return DeltaBatch(
            rows=rng.integers(0, csr.n_rows, size=k),
            cols=rng.integers(0, csr.n_cols, size=k),
            values=rng.normal(size=k),
        )

    def test_delta_rotates_fingerprint_and_serves_mutated(self, delta_served):
        csr, rng = delta_served["csr"], delta_served["rng"]
        delta = self._delta(csr, rng)
        mutated = delta.apply_to(csr)
        X = np.asarray(rng.random((csr.n_cols, 6)), dtype=np.float64)
        with ServeClient(delta_served["thread"].address) as client:
            old = client.upload(csr)["fingerprint"]
            resp = client.delta(old, delta)
            assert resp["status"] == STATUS_OK
            assert resp["previous_fingerprint"] == old
            assert resp["nnz"] == mutated.nnz
            assert resp["sessions_invalidated"] >= 0
            new = resp["fingerprint"]
            assert new != old
            got = client.spmm(X, fingerprint=new)
            assert got["status"] == STATUS_OK
            np.testing.assert_allclose(
                ServeClient.result_array(got), mutated.to_dense() @ X,
                rtol=1e-12, atol=1e-12,
            )
            # The pre-delta fingerprint no longer serves stale results.
            assert client.spmm(X, fingerprint=old)["status"] == STATUS_NOT_FOUND

    def test_delta_invalidates_warm_sessions(self, delta_served):
        csr, rng = delta_served["csr"], delta_served["rng"]
        delta = self._delta(csr, rng)
        X = np.asarray(rng.random((csr.n_cols, 4)), dtype=np.float64)
        with ServeClient(delta_served["thread"].address) as client:
            fingerprint = client.upload(csr)["fingerprint"]
            client.spmm(X, fingerprint=fingerprint)  # warms a pooled session
            resp = client.delta(fingerprint, delta)
            assert resp["status"] == STATUS_OK
            assert resp["sessions_invalidated"] >= 1

    def test_set_delta_updates_served_values(self, delta_served):
        from repro.streaming import DeltaBatch

        csr, rng = delta_served["csr"], delta_served["rng"]
        idx = np.sort(rng.choice(csr.nnz, size=3, replace=False))
        delta = DeltaBatch(
            rows=csr.row_ids()[idx], cols=csr.colidx[idx],
            values=rng.normal(size=3), mode="set",
        )
        mutated = delta.apply_to(csr)
        X = np.eye(csr.n_cols)
        with ServeClient(delta_served["thread"].address) as client:
            old = client.upload(csr)["fingerprint"]
            new = client.delta(old, delta)["fingerprint"]
            got = ServeClient.result_array(client.spmm(X, fingerprint=new))
            np.testing.assert_allclose(
                got, mutated.to_dense(), rtol=1e-12, atol=1e-12
            )

    def test_delta_unknown_fingerprint_is_not_found(self, delta_served):
        csr, rng = delta_served["csr"], delta_served["rng"]
        with ServeClient(delta_served["thread"].address) as client:
            resp = client.delta("deadbeef", self._delta(csr, rng))
            assert resp["status"] == STATUS_NOT_FOUND

    def test_malformed_delta_is_an_error(self, delta_served):
        csr = delta_served["csr"]
        with ServeClient(delta_served["thread"].address) as client:
            fingerprint = client.upload(csr)["fingerprint"]
            resp = client.request(
                {"op": "delta", "fingerprint": fingerprint,
                 "delta": {"rows": "nope"}}
            )
            assert resp["status"] == STATUS_ERROR
            assert client.ping()["status"] == STATUS_OK  # connection survives


class TestServerDrain:
    def test_drain_rejects_new_work_then_closes(self, rng):
        csr = random_csr(rng, 20, 16, density=0.2)
        config = ServeConfig(port=0, workers=1, panel_height=8)
        thread = ServerThread(config).start()
        try:
            with ServeClient(thread.address) as client:
                fingerprint = client.upload(csr)["fingerprint"]
                assert client.drain()["draining"] is True
            # The server refuses new spmm work while draining/closed:
            # either an explicit `draining` status or a closed socket.
            try:
                with ServeClient(thread.address, timeout=2.0) as late:
                    resp = late.spmm(
                        np.ones((csr.n_cols, 1)), fingerprint=fingerprint
                    )
                    assert resp["status"] == STATUS_DRAINING
            except ReproIOError:
                pass  # listener already closed: equally correct
            thread._thread.join(10.0)
            assert not thread._thread.is_alive()
        finally:
            thread.stop()


class TestDoctorServeProbe:
    def test_probe_running_server(self, served):
        from repro.resilience.doctor import doctor_report, serve_health

        host, port = served["thread"].address
        health = serve_health(f"{host}:{port}")
        assert health["reachable"] and health["ready"]
        text, problems = doctor_report(serve_address=f"{host}:{port}")
        assert not problems
        assert "pool:" in text and "admission:" in text and "breaker" in text

    def test_probe_unreachable_server(self):
        from repro.resilience.doctor import doctor_report, serve_health

        health = serve_health("127.0.0.1:1")  # nothing listens on port 1
        assert health["reachable"] is False
        text, problems = doctor_report(serve_address="127.0.0.1:1")
        assert problems and "UNREACHABLE" in text
