"""Unit tests for repro.experiments (config, records, runner, tables, figures)."""

import numpy as np
import pytest

from repro.datasets import build_corpus
from repro.errors import ConfigError
from repro.experiments import (
    ExperimentConfig,
    MatrixRecord,
    fig8_speedup_histogram,
    fig9_effectiveness_scatter,
    fig10_throughput_series,
    fig11_throughput_series,
    fig12_preprocessing_times,
    load_records,
    metis_comparison,
    render_experiments_markdown,
    run_experiment,
    save_records,
)
from repro.experiments.config import PANEL_HEIGHTS, SCALE_FACTORS, scale_model
from repro.experiments.tables import (
    format_band_table,
    needing_reordering,
    preprocessing_ratio_bands,
    records_at_k,
    speedup_bands,
    summary_stats,
)
from repro.gpu import P100
from repro.gpu.costmodel import CostModelConfig


def _record(name="m", k=512, **overrides) -> MatrixRecord:
    base = dict(
        name=name,
        category="hidden",
        expected_benefit="high",
        n_rows=100,
        n_cols=100,
        nnz=1000,
        k=k,
        spmm_cusparse_s=1.0e-3,
        spmm_aspt_nr_s=0.8e-3,
        spmm_aspt_rr_s=0.5e-3,
        sddmm_bidmach_s=2.0e-3,
        sddmm_aspt_nr_s=0.9e-3,
        sddmm_aspt_rr_s=0.6e-3,
        needs_reordering=True,
        round1_applied=True,
        round2_applied=False,
        round1_changed=True,
        round2_changed=False,
        delta_dense_ratio=0.2,
        delta_avg_sim=0.05,
        dense_ratio_before=0.05,
        dense_ratio_after=0.25,
        preprocess_s=2.0,
    )
    base.update(overrides)
    return MatrixRecord(**base)


class TestConfig:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.reorder.panel_height == PANEL_HEIGHTS["small"]

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(ks=(0,))
        with pytest.raises(ConfigError):
            ExperimentConfig(ks=())

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(scale="huge")

    def test_invalid_cache_mode(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(cache_mode="psychic")

    def test_scale_model_shrinks(self):
        dev, cost = scale_model(P100, CostModelConfig(), 8.0)
        assert dev.l2_bytes == P100.l2_bytes // 8
        assert cost.launch_overhead_s == pytest.approx(5e-6 / 8)
        assert cost.panel_overhead_cycles == pytest.approx(400.0 / 8)

    def test_scale_model_identity(self):
        dev, cost = scale_model(P100, CostModelConfig(), 1.0)
        assert dev is P100

    def test_scale_model_invalid(self):
        with pytest.raises(ConfigError):
            scale_model(P100, CostModelConfig(), 0.0)

    def test_effective_model_paper_scale_unchanged(self):
        cfg = ExperimentConfig(scale="paper")
        dev, _ = cfg.effective_model()
        assert dev.l2_bytes == P100.l2_bytes

    def test_effective_model_disabled(self):
        cfg = ExperimentConfig(scale="tiny", auto_scale_model=False)
        dev, _ = cfg.effective_model()
        assert dev.l2_bytes == P100.l2_bytes

    def test_scale_factors_cover_corpus_scales(self):
        from repro.datasets.corpus import _SCALES

        assert set(SCALE_FACTORS) == set(_SCALES)
        assert set(PANEL_HEIGHTS) == set(_SCALES)


class TestRecords:
    def test_derived_metrics(self):
        r = _record()
        assert r.spmm_rr_speedup_vs_best == pytest.approx(0.8 / 0.5)
        assert r.sddmm_rr_speedup == pytest.approx(0.9 / 0.6)
        assert r.spmm_nr_speedup_vs_cusparse == pytest.approx(1.0 / 0.8)
        assert r.spmm_flops == 2.0 * 1000 * 512
        assert r.preprocess_ratio("spmm") == pytest.approx(2.0 / 0.5e-3)

    def test_gflops(self):
        r = _record()
        assert r.spmm_gflops("aspt_rr") == pytest.approx(
            r.spmm_flops / 0.5e-3 / 1e9
        )
        assert r.sddmm_gflops("bidmach") > 0

    def test_save_load_roundtrip(self, tmp_path):
        records = [_record("a"), _record("b", k=1024)]
        path = tmp_path / "r.json"
        save_records(records, path)
        back = load_records(path)
        assert back == records


class TestTables:
    def test_records_at_k(self):
        records = [_record(k=512), _record(k=1024)]
        assert len(records_at_k(records, 512)) == 1

    def test_needing_reordering(self):
        records = [_record(), _record(needs_reordering=False)]
        assert len(needing_reordering(records)) == 1

    def test_speedup_bands_sum_to_100(self):
        rng = np.random.default_rng(0)
        records = [
            _record(f"m{i}", spmm_aspt_rr_s=float(rng.uniform(0.3e-3, 1.5e-3)))
            for i in range(50)
        ]
        bands = speedup_bands(records, "spmm_vs_best")
        assert sum(bands.values()) == pytest.approx(100.0)

    def test_speedup_bands_classification(self):
        fast = _record("fast", spmm_aspt_rr_s=0.25e-3)  # 3.2x -> >100%
        slow = _record("slow", spmm_aspt_rr_s=1.0e-3)  # 0.8x -> slowdown band
        bands = speedup_bands([fast, slow], "spmm_vs_best")
        assert bands["speedup >100%"] == 50.0
        assert bands["slowdown 0%~10%"] == 50.0

    def test_preprocessing_ratio_bands(self):
        records = [
            _record("a", preprocess_s=0.5e-3),  # 1x -> 0~5x
            _record("b", preprocess_s=4.0e-3),  # 8x -> 5~10x
            _record("c", preprocess_s=30e-3),  # 60x -> 10~100x
            _record("d", preprocess_s=100e-3),  # 200x -> >100x
        ]
        bands = preprocessing_ratio_bands(records, "spmm")
        assert all(v == 25.0 for v in bands.values())

    def test_summary_stats(self):
        records = [
            _record("a", spmm_aspt_rr_s=0.4e-3),  # 2.0x
            _record("b", spmm_aspt_rr_s=0.8e-3),  # 1.0x
        ]
        stats = summary_stats(records, "spmm_vs_best")
        assert stats["max"] == pytest.approx(2.0)
        assert stats["geomean"] == pytest.approx(np.sqrt(2.0))
        assert stats["median"] == pytest.approx(1.5)

    def test_summary_stats_empty(self):
        assert summary_stats([], "spmm_vs_best")["n"] == 0

    def test_format_band_table(self):
        bands = {512: {"speedup 0%~10%": 60.0, "speedup >100%": 40.0}}
        text = format_band_table("T", bands)
        assert "K=512" in text and "60.0%" in text

    def test_format_band_table_empty(self):
        assert "(no data)" in format_band_table("T", {})


@pytest.fixture(scope="module")
def small_run():
    """One shared tiny corpus run for the figure/report tests."""
    cfg = ExperimentConfig(ks=(512, 1024), scale="tiny", repeats=1)
    entries = build_corpus("tiny", repeats=1, categories=("hidden", "diagonal", "uniform"))
    return run_experiment(cfg, entries=entries)


class TestRunner:
    def test_record_counts(self, small_run):
        names = {r.name for r in small_run}
        assert len(small_run) == 2 * len(names)

    def test_all_times_positive(self, small_run):
        for r in small_run:
            assert r.spmm_cusparse_s > 0
            assert r.spmm_aspt_nr_s > 0
            assert r.spmm_aspt_rr_s > 0
            assert r.sddmm_aspt_rr_s > 0

    def test_diagonal_rr_equals_nr(self, small_run):
        # No candidate pairs on a diagonal matrix: RR must equal NR exactly.
        for r in small_run:
            if r.category == "diagonal":
                assert r.spmm_aspt_rr_s == pytest.approx(r.spmm_aspt_nr_s)

    def test_verify_mode(self):
        cfg = ExperimentConfig(ks=(8,), scale="tiny", repeats=1, verify=True)
        entries = build_corpus("tiny", repeats=1, categories=("uniform",))[:1]
        records = run_experiment(cfg, entries=entries)
        assert len(records) == 1


class TestFigures:
    def test_fig8(self, small_run):
        out = fig8_speedup_histogram(small_run, 512)
        assert sum(out["bands_nr"].values()) == pytest.approx(100.0)
        assert "Fig 8" in out["text"]

    def test_fig9(self, small_run):
        out = fig9_effectiveness_scatter(small_run, 512)
        assert out["n_total"] >= out["n_improved"] >= 0
        assert len(out["delta_dense_ratio"]) == out["n_total"]

    def test_fig10(self, small_run):
        out = fig10_throughput_series(small_run, 512)
        series = out["series"]
        assert set(series) == {"cusparse", "nr(aspt)", "rr(aspt)"}
        # Sorted by NR throughput.
        nr = series["nr(aspt)"]
        assert nr == sorted(nr)

    def test_fig11(self, small_run):
        out = fig11_throughput_series(small_run, 1024)
        assert set(out["series"]) == {"nr(aspt)", "rr(aspt)"}

    def test_fig12(self, small_run):
        out = fig12_preprocessing_times(small_run)
        assert out["stats"]["n"] > 0
        assert out["stats"]["max_s"] >= out["stats"]["min_s"]

    def test_metis_comparison(self):
        entries = build_corpus("tiny", repeats=1, categories=("smallworld",))[:2]
        out = metis_comparison(entries, 512)
        assert out["n_total"] == 2
        assert len(out["speedup_vs_original"]) == 2


class TestReport:
    def test_render_markdown(self, small_run):
        text = render_experiments_markdown(small_run)
        assert "Table 1" in text and "Table 4" in text
        assert "geomean" in text
        assert "paper" in text.lower()


class TestCategoryBreakdown:
    def test_groups_and_orders_by_geomean(self):
        from repro.experiments.tables import category_breakdown

        records = [
            _record("a", category="hidden", spmm_aspt_rr_s=0.4e-3),  # 2.0x
            _record("b", category="hidden", spmm_aspt_rr_s=0.4e-3),
            _record("c", category="banded", spmm_aspt_rr_s=0.8e-3),  # 1.0x
        ]
        out = category_breakdown(records)
        assert list(out) == ["hidden", "banded"]
        assert out["hidden"]["n"] == 2
        assert out["hidden"]["geomean"] == pytest.approx(2.0)

    def test_format(self):
        from repro.experiments.tables import category_breakdown, format_category_table

        out = category_breakdown([_record("a")])
        text = format_category_table("T", out)
        assert "hidden" in text and "T" in text

    def test_format_empty(self):
        from repro.experiments.tables import format_category_table

        assert "(no data)" in format_category_table("T", {})


class TestParallelRunner:
    def test_parallel_equals_sequential(self):
        entries = build_corpus("tiny", repeats=1, categories=("uniform", "hidden"))[:3]
        cfg = ExperimentConfig(ks=(512,), scale="tiny", repeats=1)
        seq = run_experiment(cfg, entries=entries, n_jobs=1)
        par = run_experiment(cfg, entries=entries, n_jobs=2)
        assert len(seq) == len(par)
        for a, b in zip(seq, par):
            # Everything except host wall-clock must match exactly.
            da, db = a.as_dict(), b.as_dict()
            da.pop("preprocess_s")
            db.pop("preprocess_s")
            da.pop("stage_seconds")
            db.pop("stage_seconds")
            assert da == db

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            run_experiment(
                ExperimentConfig(ks=(512,), scale="tiny", repeats=1),
                entries=[],
                n_jobs=0,
            )
