"""Meta-test: every public item of the library carries a docstring.

"Documentation on every public item" is a stated deliverable; this test
makes it a regression guarantee.  Public = reachable through a package's
``__all__`` (or not underscore-prefixed, for modules without ``__all__``),
plus public methods of public classes.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_METHODS = {
    # dataclass-generated or dunder machinery
    "__init__",
    "__repr__",
    "__eq__",
    "__len__",
    "__bool__",
    "__enter__",
    "__exit__",
    "__post_init__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    missing = []
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", "").startswith("repro") is False:
            continue  # re-exported third-party items
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") and mname not in EXEMPT_METHODS:
                    continue
                if mname in EXEMPT_METHODS:
                    continue
                if inspect.isfunction(member) or isinstance(
                    member, (property, classmethod, staticmethod)
                ):
                    target = (
                        member.fget
                        if isinstance(member, property)
                        else getattr(member, "__func__", member)
                    )
                    if target is None:
                        continue
                    if not (target.__doc__ and target.__doc__.strip()):
                        missing.append(f"{name}.{mname}")
    assert not missing, f"{module.__name__}: undocumented public items: {missing}"


def test_api_docs_generator_runs(tmp_path):
    """The docs/API.md generator must work against the current tree."""
    import runpy
    import sys

    out = tmp_path / "API.md"
    argv = sys.argv
    sys.argv = ["gen_api_docs.py", str(out)]
    try:
        runpy.run_path("scripts/gen_api_docs.py", run_name="__main__")
    except SystemExit as exc:
        assert exc.code in (0, None)
    finally:
        sys.argv = argv
    text = out.read_text()
    assert "## `repro.reorder.pipeline`" in text
    assert "build_plan" in text
