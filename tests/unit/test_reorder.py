"""Unit tests for repro.reorder (heuristics, pipeline, autotune)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu import GPUExecutor, P100
from repro.reorder import (
    AutotuneResult,
    ExecutionPlan,
    ReorderConfig,
    autotune,
    build_plan,
    reorder_rows,
    should_reorder_round1,
    should_reorder_round2,
)
from repro.sparse import CSRMatrix, permute_csr_rows

from conftest import random_csr


def clustered_then_shuffled(rng, n_clusters=12, rows_per=12, n_cols=256, row_nnz=16):
    """A matrix with strong hidden row clusters in random row order."""
    dense = np.zeros((n_clusters * rows_per, n_cols))
    for c in range(n_clusters):
        pattern = rng.choice(n_cols, size=row_nnz, replace=False)
        for r in range(rows_per):
            dense[c * rows_per + r, pattern] = 1.0
    order = rng.permutation(n_clusters * rows_per)
    return CSRMatrix.from_dense(dense[order])


class TestHeuristics:
    def test_round1_skips_well_clustered(self):
        # Identical consecutive rows -> high dense ratio -> skip.
        dense = np.zeros((64, 64))
        for g in range(8):
            cols = np.arange(g * 8, g * 8 + 6)
            dense[g * 8 : (g + 1) * 8, cols] = 1.0
        m = CSRMatrix.from_dense(dense)
        decision = should_reorder_round1(m, panel_height=8)
        assert not decision.reorder
        assert decision.indicator > 0.10

    def test_round1_reorders_scattered(self):
        m = CSRMatrix.from_dense(np.eye(64))
        decision = should_reorder_round1(m, panel_height=8)
        assert decision.reorder
        assert decision.indicator == 0.0

    def test_round2_skips_similar_consecutive(self):
        dense = np.zeros((8, 16))
        dense[:, [0, 3, 9]] = 1.0  # all rows identical
        decision = should_reorder_round2(CSRMatrix.from_dense(dense))
        assert not decision.reorder
        assert decision.indicator == pytest.approx(1.0)

    def test_round2_reorders_dissimilar(self):
        decision = should_reorder_round2(CSRMatrix.from_dense(np.eye(8)))
        assert decision.reorder

    def test_threshold_validation(self, paper_matrix):
        with pytest.raises(ValidationError):
            should_reorder_round1(paper_matrix, 3, skip_above=1.5)
        with pytest.raises(ValidationError):
            should_reorder_round2(paper_matrix, skip_above=-0.1)

    def test_paper_matrix_needs_round1(self, paper_matrix):
        # dense ratio 2/13 ~ 15% > 10% -> the gate would actually skip;
        # verify the indicator value is exactly the tiling ratio.
        decision = should_reorder_round1(paper_matrix, 3)
        assert decision.indicator == pytest.approx(2 / 13)
        assert not decision.reorder


class TestReorderRows:
    def test_identity_on_diagonal(self):
        m = CSRMatrix.from_dense(np.eye(32))
        order = reorder_rows(m, ReorderConfig(siglen=32))
        assert order.tolist() == list(range(32))

    def test_recovers_hidden_clusters(self, rng):
        m = clustered_then_shuffled(rng)
        order = reorder_rows(m, ReorderConfig(siglen=64, threshold_size=64))
        reordered = permute_csr_rows(m, order)
        from repro.similarity import average_consecutive_similarity

        before = average_consecutive_similarity(m)
        after = average_consecutive_similarity(reordered)
        assert after > before + 0.3

    def test_order_is_permutation(self, rng):
        m = random_csr(rng, 50, 40, 0.1)
        order = reorder_rows(m, ReorderConfig(siglen=32))
        assert sorted(order.tolist()) == list(range(50))


class TestBuildPlan:
    def test_plan_spmm_matches_direct(self, rng):
        m = clustered_then_shuffled(rng)
        plan = build_plan(m, ReorderConfig(siglen=64, panel_height=8))
        plan.validate(seed=1)

    def test_plan_on_random_matrix(self, rng):
        m = random_csr(rng, 60, 50, 0.08)
        plan = build_plan(m, ReorderConfig(siglen=32, panel_height=8))
        plan.validate(seed=2)

    def test_plan_sddmm_matches_direct(self, paper_matrix, rng):
        plan = build_plan(
            paper_matrix,
            ReorderConfig(siglen=32, panel_height=3, force_round1=True, force_round2=True),
        )
        X = rng.normal(size=(6, 5))
        Y = rng.normal(size=(6, 5))
        from repro.kernels import sddmm

        got = plan.sddmm(X, Y)
        want = sddmm(paper_matrix, X, Y)
        assert got.same_pattern(want)
        np.testing.assert_allclose(got.values, want.values)

    def test_round1_improves_dense_ratio_on_hidden_clusters(self, rng):
        # Many small clusters: shuffled panels rarely hold two rows of the
        # same cluster, so the original dense ratio is low and reordering
        # must raise it substantially.
        m = clustered_then_shuffled(rng, n_clusters=48, rows_per=4, n_cols=1024)
        plan = build_plan(
            m,
            ReorderConfig(siglen=64, panel_height=4, threshold_size=64),
        )
        assert plan.stats.round1_applied
        assert plan.stats.delta_dense_ratio > 0.3

    def test_skip_gates_respected(self):
        dense = np.zeros((64, 64))
        for g in range(8):
            dense[g * 8 : (g + 1) * 8, np.arange(g * 8, g * 8 + 6)] = 1.0
        m = CSRMatrix.from_dense(dense)
        plan = build_plan(m, ReorderConfig(panel_height=8))
        assert not plan.stats.round1_applied
        np.testing.assert_array_equal(plan.row_order, np.arange(64))

    def test_force_overrides_gate(self):
        dense = np.zeros((64, 64))
        for g in range(8):
            dense[g * 8 : (g + 1) * 8, np.arange(g * 8, g * 8 + 6)] = 1.0
        m = CSRMatrix.from_dense(dense)
        plan = build_plan(m, ReorderConfig(panel_height=8, force_round1=True))
        assert plan.stats.round1_applied

    def test_diagonal_matrix_plan_is_identity(self):
        m = CSRMatrix.from_dense(np.eye(32))
        plan = build_plan(m, ReorderConfig(siglen=32, panel_height=8))
        # LSH finds nothing -> identity ordering, zero dense tiles.
        np.testing.assert_array_equal(plan.row_order, np.arange(32))
        assert plan.tiled.nnz_dense == 0
        plan.validate(seed=3)

    def test_preprocess_times_recorded(self, rng):
        m = clustered_then_shuffled(rng)
        plan = build_plan(m, ReorderConfig(siglen=64, panel_height=8))
        assert plan.preprocessing_time > 0
        assert "tile" in plan.preprocess_seconds
        assert plan.preprocess_seconds["total"] >= plan.preprocess_seconds["tile"]

    def test_cost_view_uses_remainder(self, rng):
        m = clustered_then_shuffled(rng)
        plan = build_plan(
            m, ReorderConfig(siglen=64, panel_height=8, force_round2=True)
        )
        view = plan.cost_view()
        assert view.sparse_part is plan.remainder
        assert view.dense_part is plan.tiled.dense_part

    def test_empty_matrix(self):
        plan = build_plan(CSRMatrix.empty((8, 8)), ReorderConfig(panel_height=4))
        assert plan.spmm(np.ones((8, 2))).tolist() == np.zeros((8, 2)).tolist()

    def test_stats_deltas(self, rng):
        m = clustered_then_shuffled(rng)
        plan = build_plan(m, ReorderConfig(siglen=64, panel_height=8))
        s = plan.stats
        assert s.delta_dense_ratio == pytest.approx(
            s.dense_ratio_after - s.dense_ratio_before
        )
        assert s.delta_avg_sim == pytest.approx(s.avg_sim_after - s.avg_sim_before)


class TestAutotune:
    def test_reordering_wins_on_hidden_clusters(self, rng):
        m = clustered_then_shuffled(rng, n_clusters=16, rows_per=16, n_cols=1024)
        executor = GPUExecutor(P100.with_overrides(l2_bytes=64 * 1024))
        result = autotune(
            m, 512, executor=executor,
            config=ReorderConfig(siglen=64, panel_height=16, threshold_size=64),
        )
        assert isinstance(result, AutotuneResult)
        assert result.use_reordering
        assert result.speedup > 1.0
        result.plan.validate(seed=4)

    def test_plain_wins_on_already_clustered(self):
        # Pre-clustered matrix: reordering can only break things or tie;
        # autotune must fall back to the non-reordered plan when slower.
        dense = np.zeros((128, 256))
        rng = np.random.default_rng(0)
        for g in range(16):
            cols = rng.choice(256, size=12, replace=False)
            dense[g * 8 : (g + 1) * 8, cols] = 1.0
        m = CSRMatrix.from_dense(dense)
        result = autotune(
            m, 512,
            config=ReorderConfig(siglen=32, panel_height=8, force_round1=True, force_round2=True),
        )
        # Either choice must be internally consistent:
        if result.use_reordering:
            assert result.cost_reordered.time_s <= result.cost_plain.time_s
        else:
            assert result.cost_plain.time_s < result.cost_reordered.time_s

    def test_invalid_op(self, paper_matrix):
        with pytest.raises(ValidationError):
            autotune(paper_matrix, 512, op="spgemm")

    def test_sddmm_op(self, rng):
        m = clustered_then_shuffled(rng)
        result = autotune(m, 512, op="sddmm", config=ReorderConfig(siglen=32, panel_height=8))
        assert result.cost_reordered.op == "sddmm"


class TestPlanPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        m = clustered_then_shuffled(rng, n_clusters=24, rows_per=6, n_cols=512)
        plan = build_plan(m, ReorderConfig(siglen=32, panel_height=8))
        path = tmp_path / "plan.npz"
        plan.save(path)
        loaded = ExecutionPlan.load(path, m)
        np.testing.assert_array_equal(loaded.row_order, plan.row_order)
        np.testing.assert_array_equal(loaded.remainder_order, plan.remainder_order)
        assert loaded.tiled.nnz_dense == plan.tiled.nnz_dense
        assert loaded.stats == plan.stats
        assert loaded.preprocessing_time == pytest.approx(plan.preprocessing_time)
        X = rng.normal(size=(m.n_cols, 4))
        np.testing.assert_allclose(loaded.spmm(X), plan.spmm(X))

    def test_load_wrong_matrix_rejected(self, rng, tmp_path):
        m = clustered_then_shuffled(rng, n_clusters=12, rows_per=6, n_cols=256)
        plan = build_plan(m, ReorderConfig(siglen=32, panel_height=8))
        path = tmp_path / "plan.npz"
        plan.save(path)
        from repro.sparse import CSRMatrix

        other = CSRMatrix.empty((m.n_rows + 1, m.n_cols))
        with pytest.raises(ValueError):
            ExecutionPlan.load(path, other)

    def test_loaded_plan_costable(self, rng, tmp_path):
        from repro.gpu import GPUExecutor

        m = clustered_then_shuffled(rng, n_clusters=12, rows_per=6, n_cols=256)
        plan = build_plan(m, ReorderConfig(siglen=32, panel_height=8))
        path = tmp_path / "plan.npz"
        plan.save(path)
        loaded = ExecutionPlan.load(path, m)
        ex = GPUExecutor()
        assert ex.spmm_cost(loaded.cost_view(), 128, "aspt").time_s == pytest.approx(
            ex.spmm_cost(plan.cost_view(), 128, "aspt").time_s
        )
