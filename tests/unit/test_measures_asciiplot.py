"""Unit tests for repro.similarity.measures and repro.experiments.asciiplot."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments.asciiplot import ascii_histogram, ascii_lines, ascii_scatter
from repro.similarity import MEASURES, jaccard_for_pairs, similarity_for_pairs
from repro.sparse import CSRMatrix

from conftest import random_csr


class TestSimilarityMeasures:
    def test_jaccard_matches_dedicated_function(self, rng):
        m = random_csr(rng, 20, 15, 0.2)
        pairs = np.array([[i, j] for i in range(20) for j in range(i + 1, 20)])
        np.testing.assert_allclose(
            similarity_for_pairs(m, pairs, "jaccard"),
            jaccard_for_pairs(m, pairs),
        )

    def test_paper_matrix_values(self, paper_matrix):
        pairs = np.array([[0, 4]])
        # S0={0,4}, S4={0,3,4}: inter=2, |A|=2, |B|=3
        assert similarity_for_pairs(paper_matrix, pairs, "jaccard")[0] == pytest.approx(2 / 3)
        assert similarity_for_pairs(paper_matrix, pairs, "cosine")[0] == pytest.approx(2 / np.sqrt(6))
        assert similarity_for_pairs(paper_matrix, pairs, "overlap")[0] == pytest.approx(1.0)
        assert similarity_for_pairs(paper_matrix, pairs, "dice")[0] == pytest.approx(4 / 5)

    def test_subset_scores_one_under_overlap(self):
        m = CSRMatrix.from_dense(
            [[1.0, 1.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]]
        )
        pairs = np.array([[0, 1]])
        assert similarity_for_pairs(m, pairs, "overlap")[0] == 1.0
        assert similarity_for_pairs(m, pairs, "jaccard")[0] == pytest.approx(0.5)

    def test_all_measures_bounded(self, rng):
        m = random_csr(rng, 15, 12, 0.25)
        pairs = np.array([[i, j] for i in range(15) for j in range(15)])
        for measure in MEASURES:
            out = similarity_for_pairs(m, pairs, measure)
            assert (out >= 0.0).all() and (out <= 1.0 + 1e-12).all(), measure

    def test_empty_rows_score_zero(self):
        m = CSRMatrix.from_dense([[0.0, 0.0], [1.0, 0.0]])
        pairs = np.array([[0, 1], [0, 0]])
        for measure in MEASURES:
            np.testing.assert_allclose(similarity_for_pairs(m, pairs, measure), 0.0)

    def test_unknown_measure_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            similarity_for_pairs(paper_matrix, np.array([[0, 1]]), "hamming")

    def test_bad_pairs_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            similarity_for_pairs(paper_matrix, np.array([[0, 9]]), "jaccard")
        with pytest.raises(ValidationError):
            similarity_for_pairs(paper_matrix, np.array([0, 1]), "jaccard")

    def test_empty_pairs(self, paper_matrix):
        out = similarity_for_pairs(paper_matrix, np.empty((0, 2), dtype=np.int64), "cosine")
        assert out.size == 0

    def test_measure_threads_through_lsh_index(self, rng):
        from repro.similarity import LSHIndex

        m = random_csr(rng, 30, 20, 0.2)
        pairs_j, sims_j = LSHIndex(siglen=32, seed=0, measure="jaccard").candidate_pairs(m)
        pairs_o, sims_o = LSHIndex(siglen=32, seed=0, measure="overlap").candidate_pairs(m)
        np.testing.assert_array_equal(pairs_j, pairs_o)  # candidates identical
        assert (sims_o >= sims_j - 1e-12).all()  # overlap >= jaccard always


class TestAsciiPlots:
    def test_scatter_basic(self):
        out = ascii_scatter(np.array([0.0, 1.0]), np.array([0.0, 1.0]), title="T")
        assert "T" in out and "*" in out
        assert "x: [0, 1]" in out

    def test_scatter_marks(self):
        out = ascii_scatter(np.array([0.0, 1.0]), np.array([0.0, 1.0]), ["+", "-"])
        assert "+" in out and "-" in out

    def test_scatter_empty(self):
        assert "(no data)" in ascii_scatter(np.array([]), np.array([]), title="T")

    def test_scatter_degenerate_range(self):
        out = ascii_scatter(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert "*" in out

    def test_lines_basic(self):
        out = ascii_lines({"abc": np.array([1.0, 2.0, 3.0])}, title="L")
        assert "L" in out and "a=abc" in out

    def test_lines_log_scale(self):
        out = ascii_lines({"x": np.array([1.0, 10.0, 100.0])}, log_y=True)
        assert "log10" in out

    def test_lines_empty(self):
        assert "(no data)" in ascii_lines({}, title="L")

    def test_lines_multiple_series(self):
        out = ascii_lines(
            {"first": np.array([1.0, 2.0]), "second": np.array([2.0, 1.0])}
        )
        assert "f=first" in out and "s=second" in out

    def test_histogram_basic(self):
        out = ascii_histogram(["a", "bb"], np.array([50.0, 100.0]), title="H")
        assert "H" in out
        assert out.count("#") > 0

    def test_histogram_empty(self):
        assert "(no data)" in ascii_histogram([], np.array([]), title="H")
