"""Unit tests for repro.clustering (union-find, heap, Alg. 3)."""

import numpy as np
import pytest

from repro.clustering import (
    ClusteringResult,
    MaxHeap,
    UnionFind,
    cluster_rows,
    clusters_from_forest,
    order_from_clusters,
)
from repro.errors import ValidationError


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(4)
        assert len(uf) == 4
        assert uf.n_sets == 4
        assert all(uf.is_root(i) for i in range(4))

    def test_union_by_size_smaller_into_larger(self):
        uf = UnionFind(5)
        uf.union_by_size(0, 1)  # {0,1} rooted at 0 (tie -> smaller index)
        assert uf.root(1) == 0
        uf.union_by_size(2, 3)  # {2,3} rooted at 2
        r = uf.union_by_size(1, 2)  # equal sizes -> smaller root wins
        assert r == 0
        assert uf.root(3) == 0
        assert uf.size[0] == 4
        assert uf.n_sets == 2

    def test_larger_cluster_root_survives(self):
        uf = UnionFind(5)
        uf.union_by_size(3, 4)  # {3,4} rooted at 3
        uf.union_by_size(3, 2)  # size 2 vs 1 -> root stays 3
        assert uf.root(2) == 3
        r = uf.union_by_size(0, 3)  # {0} size 1 into {2,3,4} size 3
        assert r == 3

    def test_union_same_set_noop(self):
        uf = UnionFind(3)
        uf.union_by_size(0, 1)
        before = uf.n_sets
        assert uf.union_by_size(0, 1) == uf.root(0)
        assert uf.n_sets == before

    def test_merge_roots_rejects_non_roots(self):
        uf = UnionFind(3)
        uf.union_by_size(0, 1)
        with pytest.raises(ValueError):
            uf.merge_roots(1, 2)  # 1 is no longer a root

    def test_merge_roots_rejects_self_merge(self):
        uf = UnionFind(3)
        with pytest.raises(ValueError):
            uf.merge_roots(1, 1)

    def test_path_halving_preserves_roots(self):
        uf = UnionFind(50)
        for i in range(1, 50):
            uf.union_by_size(0, i)
        assert all(uf.root(i) == 0 for i in range(50))
        assert uf.size[0] == 50
        assert uf.n_sets == 1

    def test_members(self):
        uf = UnionFind(4)
        uf.union_by_size(0, 2)
        m = uf.members()
        assert m[0] == [0, 2]
        assert m[1] == [1]


class TestMaxHeap:
    def test_push_pop_ordering(self):
        h = MaxHeap()
        h.push(0.3, 1, 2)
        h.push(0.9, 0, 3)
        h.push(0.5, 4, 5)
        assert h.pop() == (0.9, 0, 3)
        assert h.pop() == (0.5, 4, 5)
        assert h.pop() == (0.3, 1, 2)

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            MaxHeap().pop()
        with pytest.raises(IndexError):
            MaxHeap().peek()

    def test_peek_does_not_remove(self):
        h = MaxHeap()
        h.push(1.0, 0, 1)
        assert h.peek() == (1.0, 0, 1)
        assert len(h) == 1

    def test_tie_break_deterministic(self):
        h = MaxHeap()
        h.push(0.5, 3, 4)
        h.push(0.5, 1, 2)
        h.push(0.5, 1, 0)
        assert h.pop() == (0.5, 1, 0)
        assert h.pop() == (0.5, 1, 2)
        assert h.pop() == (0.5, 3, 4)

    def test_growth_beyond_capacity(self):
        h = MaxHeap(capacity=2)
        for k in range(100):
            h.push(float(k), k, k + 1)
        assert len(h) == 100
        out = [h.pop()[0] for _ in range(100)]
        assert out == sorted(out, reverse=True)

    def test_from_arrays_heapifies(self):
        sims = np.array([0.1, 0.9, 0.4, 0.7])
        h = MaxHeap.from_arrays(sims, np.arange(4), np.arange(4) + 10)
        assert h.pop() == (0.9, 1, 11)
        assert len(h) == 3

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError):
            MaxHeap.from_arrays(np.zeros(2), np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64))

    def test_bool(self):
        h = MaxHeap()
        assert not h
        h.push(0.5, 0, 1)
        assert h

    def test_random_sequence_matches_sorted(self):
        rng = np.random.default_rng(0)
        sims = rng.random(500)
        h = MaxHeap.from_arrays(sims, np.arange(500), np.arange(500))
        popped = [h.pop()[0] for _ in range(500)]
        np.testing.assert_allclose(popped, np.sort(sims)[::-1])


class TestClusterRows:
    def test_paper_fig6_example(self, paper_matrix):
        # LSH generates (0,4) with J=2/3 and (2,4) with J=1/4; the
        # clustering must return [0, 2, 4, 1, 3, 5] (paper Fig. 6).
        pairs = np.array([[0, 4], [2, 4]])
        sims = np.array([2 / 3, 1 / 4])
        result = cluster_rows(paper_matrix, pairs, sims)
        assert result.order.tolist() == [0, 2, 4, 1, 3, 5]
        assert result.n_clusters == 4
        assert result.n_merges == 2
        assert result.n_requeued == 1  # (2,4) re-queued as (0,2)

    def test_no_candidates_identity(self, paper_matrix):
        result = cluster_rows(
            paper_matrix, np.empty((0, 2), dtype=np.int64), np.zeros(0)
        )
        assert result.is_identity
        assert result.n_clusters == 6

    def test_order_is_permutation(self, paper_matrix, rng):
        pairs = np.array([[0, 4], [2, 4], [1, 5], [3, 5]])
        sims = np.array([0.6, 0.25, 0.3, 0.2])
        result = cluster_rows(paper_matrix, pairs, sims)
        assert sorted(result.order.tolist()) == list(range(6))

    def test_threshold_size_retires_clusters(self, paper_matrix):
        pairs = np.array([[0, 4], [2, 4], [0, 2]])
        sims = np.array([2 / 3, 1 / 4, 1 / 4])
        result = cluster_rows(paper_matrix, pairs, sims, threshold_size=2)
        # First merge creates a cluster of size 2 -> retired immediately,
        # so 2 cannot join {0, 4}.
        assert result.n_retired >= 1
        assert result.cluster_of[2] != result.cluster_of[0]

    def test_cluster_of_consistent_with_order(self, paper_matrix):
        pairs = np.array([[0, 4], [2, 4]])
        sims = np.array([2 / 3, 1 / 4])
        result = cluster_rows(paper_matrix, pairs, sims)
        # Rows of the same cluster are contiguous in the order.
        positions = {int(r): k for k, r in enumerate(result.order)}
        for root in np.unique(result.cluster_of):
            members = np.flatnonzero(result.cluster_of == root)
            pos = sorted(positions[int(m)] for m in members)
            assert pos == list(range(pos[0], pos[0] + len(pos)))

    def test_mismatched_inputs_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            cluster_rows(paper_matrix, np.array([[0, 1]]), np.zeros(2))
        with pytest.raises(ValidationError):
            cluster_rows(paper_matrix, np.array([0, 1]), np.zeros(2))

    def test_duplicate_candidates_harmless(self, paper_matrix):
        pairs = np.array([[0, 4], [0, 4], [4, 0]])
        sims = np.array([2 / 3, 2 / 3, 2 / 3])
        result = cluster_rows(paper_matrix, pairs, sims)
        assert result.n_merges == 1

    def test_result_type(self, paper_matrix):
        result = cluster_rows(paper_matrix, np.array([[0, 4]]), np.array([0.5]))
        assert isinstance(result, ClusteringResult)


class TestOrdering:
    def test_clusters_from_forest_ordering(self):
        uf = UnionFind(6)
        uf.union_by_size(4, 2)
        uf.union_by_size(5, 1)
        clusters = clusters_from_forest(uf)
        keys = [members[0] for members in clusters.values()]
        assert keys == sorted(keys)
        all_members = np.concatenate(list(clusters.values()))
        assert sorted(all_members.tolist()) == list(range(6))

    def test_order_from_clusters_identity_when_empty(self):
        assert order_from_clusters({}, 4).tolist() == [0, 1, 2, 3]

    def test_order_from_clusters_wrong_cover(self):
        with pytest.raises(ValueError):
            order_from_clusters({0: np.array([0, 1])}, 4)


class TestBatchScoringInternals:
    """Invariants the batch-scored rewrite of Alg. 3 relies on."""

    @staticmethod
    def _random_matrix(rng, n_rows=24, n_cols=40):
        # Deliberately varied row lengths so the measure upper bounds are
        # non-trivial (< 1.0) and requeued pairs can accumulate in batches.
        dense = np.zeros((n_rows, n_cols))
        for i in range(n_rows):
            k = int(rng.integers(1, 1 + min(n_cols, 2 + 3 * (i % 7))))
            cols = rng.choice(n_cols, size=k, replace=False)
            dense[i, cols] = 1.0
        from repro.sparse import CSRMatrix

        return CSRMatrix.from_dense(dense)

    @pytest.mark.parametrize("measure", ["jaccard", "cosine", "overlap", "dice"])
    def test_scalar_score_bitwise_matches_vector_path(self, rng, measure):
        from repro.clustering.hierarchical import _scalar_score
        from repro.similarity import similarity_for_pairs

        csr = self._random_matrix(rng)
        supports = [
            frozenset(csr.colidx[csr.rowptr[i] : csr.rowptr[i + 1]].tolist())
            for i in range(csr.n_rows)
        ]
        pairs = np.array(
            [[i, j] for i in range(csr.n_rows) for j in range(i + 1, csr.n_rows)],
            dtype=np.int64,
        )
        vector = similarity_for_pairs(csr, pairs, measure)
        for (i, j), want in zip(pairs.tolist(), vector.tolist()):
            inter = len(supports[i] & supports[j])
            got = _scalar_score(measure, inter, len(supports[i]), len(supports[j]))
            assert got == want  # bitwise, not approximate

    @pytest.mark.parametrize("measure", ["jaccard", "cosine", "overlap", "dice"])
    def test_upper_bound_is_admissible(self, rng, measure):
        from repro.clustering.hierarchical import _upper_bound_fn
        from repro.similarity import similarity_for_pairs

        csr = self._random_matrix(rng)
        lens = csr.row_lengths().tolist()
        bound = _upper_bound_fn(measure, lens)
        pairs = np.array(
            [[i, j] for i in range(csr.n_rows) for j in range(i + 1, csr.n_rows)],
            dtype=np.int64,
        )
        sims = similarity_for_pairs(csr, pairs, measure)
        for (i, j), s in zip(pairs.tolist(), sims.tolist()):
            assert bound(i, j) >= s

    @pytest.mark.parametrize("measure", ["jaccard", "dice"])
    def test_requeue_path_is_deterministic(self, rng, measure):
        from repro.similarity import LSHIndex

        csr = self._random_matrix(rng, n_rows=48, n_cols=32)
        pairs, sims = LSHIndex(siglen=32, bsize=2, seed=3).candidate_pairs(csr)
        if measure != "jaccard":
            from repro.similarity import similarity_for_pairs

            sims = similarity_for_pairs(csr, pairs, measure)
        first = cluster_rows(csr, pairs, sims, threshold_size=8, measure=measure)
        second = cluster_rows(csr, pairs, sims, threshold_size=8, measure=measure)
        assert first.n_requeued > 0  # the re-scoring path actually ran
        assert first.order.tolist() == second.order.tolist()
        assert first.cluster_of.tolist() == second.cluster_of.tolist()
        assert sorted(first.order.tolist()) == list(range(csr.n_rows))
