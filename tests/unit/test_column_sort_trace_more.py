"""Additional coverage: panel column ordering semantics, trace helpers,
autotune internals and MatrixMarket writer details."""

import io

import numpy as np
import pytest

from repro.aspt import panel_column_orders, split_into_panels, tile_matrix
from repro.gpu.trace import (
    block_access_stream,
    paper_example_access_counts,
    unique_block_column_count,
)
from repro.sparse import CSRMatrix, read_matrix_market, write_matrix_market

from conftest import random_csr


class TestColumnSortSemantics:
    def test_densest_first(self):
        dense = np.zeros((4, 5))
        dense[:, 3] = 1.0  # col 3: 4 nnz
        dense[:2, 1] = 1.0  # col 1: 2 nnz
        dense[0, 0] = 1.0  # col 0: 1 nnz
        orders = panel_column_orders(CSRMatrix.from_dense(dense), 4)
        assert orders[0][:3].tolist() == [3, 1, 0]

    def test_tie_break_ascending_column(self):
        dense = np.zeros((2, 4))
        dense[0, [1, 3]] = 1.0
        dense[1, [1, 3]] = 1.0
        orders = panel_column_orders(CSRMatrix.from_dense(dense), 2)
        # cols 1 and 3 both have 2 nnz; ties ascending; 0 and 2 follow.
        assert orders[0].tolist() == [1, 3, 0, 2]

    def test_one_order_per_panel(self, rng):
        m = random_csr(rng, 10, 6, 0.3)
        assert len(panel_column_orders(m, 3)) == 4

    def test_consistent_with_tiler(self, paper_matrix):
        # Columns the tiler marks dense must be a prefix of the sorted
        # order (they have the highest counts by construction).
        orders = panel_column_orders(paper_matrix, 3)
        tiled = tile_matrix(paper_matrix, 3, 2)
        for p, dense_cols in enumerate(tiled.panel_dense_cols):
            k = dense_cols.size
            assert set(orders[p][:k].tolist()) == set(dense_cols.tolist())


class TestSplitIntoPanels:
    def test_round_trips_nnz(self, rng):
        m = random_csr(rng, 11, 8, 0.3)
        panels = split_into_panels(m, 4)
        assert sum(p.nnz for p in panels) == m.nnz
        assert [p.n_rows for p in panels] == [4, 4, 3]


class TestTraceHelpers:
    def test_unique_block_column_count_vs_stream(self, rng):
        m = random_csr(rng, 20, 12, 0.3)
        for rpb in (1, 2, 5):
            stream = block_access_stream(m, rpb)
            assert stream.size == unique_block_column_count(m, rpb)

    def test_rows_per_block_one_counts_nnz(self, rng):
        m = random_csr(rng, 15, 15, 0.2)
        # One row per block: no dedup possible, count == nnz (rows are
        # canonical, no duplicate columns within a row).
        assert unique_block_column_count(m, 1) == m.nnz

    def test_paper_counts_without_round2(self, paper_matrix):
        counts = paper_example_access_counts(
            paper_matrix, round1_order=np.array([0, 4, 2, 3, 1, 5])
        )
        # Without the second-round grouping, remainder rows don't share
        # blocks: 4 dense + 4 sparse rows' distinct cols.
        assert counts.aspt_reordered > 6
        assert counts.rowwise == 13


class TestAutotuneInternals:
    def test_result_costs_are_consistent(self, rng):
        from repro.reorder import ReorderConfig, autotune

        m = random_csr(rng, 60, 40, 0.1)
        result = autotune(m, 256, config=ReorderConfig(siglen=16, panel_height=8))
        assert result.speedup == pytest.approx(
            result.cost_plain.time_s / result.cost_reordered.time_s
        )
        assert result.cost_reordered.op == result.cost_plain.op == "spmm"


class TestMatrixMarketWriterDetails:
    def test_comment_lines_written(self, paper_matrix):
        buf = io.StringIO()
        write_matrix_market(buf, paper_matrix, comment="line one\nline two")
        text = buf.getvalue()
        assert "% line one" in text and "% line two" in text
        buf.seek(0)
        assert read_matrix_market(buf).allclose(paper_matrix)

    def test_values_roundtrip_exactly(self):
        # repr() formatting must preserve doubles bit-for-bit.
        m = CSRMatrix.from_arrays(
            (1, 3), [0, 3], [0, 1, 2], [1 / 3, 1e-300, 1.23456789012345e10]
        )
        buf = io.StringIO()
        write_matrix_market(buf, m)
        buf.seek(0)
        back = read_matrix_market(buf)
        np.testing.assert_array_equal(back.values, m.values)
