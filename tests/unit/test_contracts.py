"""Tests for the runtime contract layer (repro.contracts)."""

import numpy as np
import pytest

from repro.contracts import (
    checked,
    contracts,
    contracts_enabled,
    enable_contracts,
    invokes,
    validates,
    validates_each,
)
from repro.errors import FormatError, ValidationError
from repro.kernels.spmm import spmm
from repro.sparse.csr import CSRMatrix


def bad_csr() -> CSRMatrix:
    """A structurally broken CSR built via the raw constructor.

    Direct dataclass construction bypasses canonicalisation, so the
    unsorted row survives until ``validate()`` looks at it.
    """
    return CSRMatrix(
        (1, 3),
        np.array([0, 2], dtype=np.int64),
        np.array([2, 0], dtype=np.int64),
        np.array([1.0, 2.0]),
    )


def good_csr() -> CSRMatrix:
    return CSRMatrix.from_dense(np.array([[1.0, 0.0, 2.0]]))


class TestToggle:
    def test_suite_runs_with_contracts_enabled(self):
        """tests/conftest.py switches contracts on for the whole suite."""
        assert contracts_enabled()

    def test_enable_disable_roundtrip(self):
        previous = contracts_enabled()
        try:
            enable_contracts(False)
            assert not contracts_enabled()
            enable_contracts(True)
            assert contracts_enabled()
        finally:
            enable_contracts(previous)

    def test_context_manager_restores_state(self):
        before = contracts_enabled()
        with contracts(not before):
            assert contracts_enabled() is (not before)
        assert contracts_enabled() is before

    def test_context_manager_restores_on_error(self):
        before = contracts_enabled()
        with pytest.raises(RuntimeError):
            with contracts(not before):
                raise RuntimeError("boom")
        assert contracts_enabled() is before


class TestChecked:
    def test_contract_runs_when_enabled(self):
        @checked(validates("csr"))
        def consume(csr):
            return csr.nnz

        with contracts(True):
            with pytest.raises(FormatError):
                consume(bad_csr())

    def test_contract_skipped_when_disabled(self):
        @checked(validates("csr"))
        def consume(csr):
            return csr.nnz

        with contracts(False):
            assert consume(bad_csr()) == 2

    def test_defaults_are_bound(self):
        seen = {}

        @checked(lambda args: seen.update(args))
        def f(a, b=7, *, c=9):
            return a + b + c

        with contracts(True):
            assert f(1) == 17
        assert seen == {"a": 1, "b": 7, "c": 9}

    def test_kwargs_pass_through(self):
        @checked()
        def f(a, *, b):
            return (a, b)

        with contracts(True):
            assert f(1, b=2) == (1, 2)

    def test_introspection_surface(self):
        contract = validates("csr")

        @checked(contract)
        def f(csr):
            """Doc."""
            return csr

        assert f.__wrapped__ is not None
        assert f.__contracts__ == (contract,)
        assert f.__doc__ == "Doc."
        assert f.__name__ == "f"

    def test_contracts_run_in_order(self):
        calls = []

        @checked(lambda a: calls.append("first"), lambda a: calls.append("second"))
        def f():
            return None

        with contracts(True):
            f()
        assert calls == ["first", "second"]


class TestContractFactories:
    def test_validates_skips_none(self):
        @checked(validates("csr"))
        def f(csr=None):
            return csr

        with contracts(True):
            assert f() is None

    def test_validates_each(self):
        @checked(validates_each("mats"))
        def f(mats):
            return len(mats)

        with contracts(True):
            assert f([good_csr(), None, good_csr()]) == 3
            with pytest.raises(FormatError):
                f([good_csr(), bad_csr()])

    def test_invokes_calls_named_method(self):
        class Probe:
            def __init__(self):
                self.calls = 0

            def cheap_check(self):
                self.calls += 1

        @checked(invokes("cheap_check", "obj"))
        def f(obj):
            return obj

        probe = Probe()
        with contracts(True):
            f(probe)
        assert probe.calls == 1
        with contracts(False):
            f(probe)
        assert probe.calls == 1


class TestLibraryIntegration:
    def test_spmm_rejects_broken_csr_under_contracts(self):
        X = np.ones((3, 2))
        with contracts(True):
            with pytest.raises(FormatError):
                spmm(bad_csr(), X)

    def test_spmm_parity_on_off(self):
        """Contracts must not change results, only add validation."""
        csr = good_csr()
        X = np.arange(6, dtype=np.float64).reshape(3, 2)
        with contracts(True):
            on = spmm(csr, X)
        with contracts(False):
            off = spmm(csr, X)
        np.testing.assert_array_equal(on, off)

    def test_tiled_contract_uses_structure_check(self):
        from repro.aspt.tiles import tile_matrix
        from repro.kernels.aspt_spmm import spmm_tiled

        tiled = tile_matrix(good_csr(), panel_height=1)
        X = np.ones((3, 2))
        with contracts(True):
            out = spmm_tiled(tiled, X)
        np.testing.assert_allclose(out, good_csr().to_dense() @ X)

    def test_permutation_contract_error_routes_validationerror(self):
        from repro.sparse.ops import permute_csr_rows

        with contracts(True):
            with pytest.raises(ValidationError):
                permute_csr_rows(good_csr(), np.array([0, 0], dtype=np.int64))
