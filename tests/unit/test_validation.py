"""Unit tests for repro.util.validation and repro.util.rng/timing."""

import numpy as np
import pytest

from repro.errors import ReproError, ShapeError, ValidationError
from repro.util.rng import as_generator, spawn_generators
from repro.util.timing import Timer, timed
from repro.util.validation import (
    check_dense,
    check_in_range,
    check_integer_array,
    check_nonnegative,
    check_permutation,
    check_positive,
)


class TestCheckPositive:
    def test_accepts_positive_int(self):
        assert check_positive("n", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive("n", 0)

    def test_rejects_float_when_integer(self):
        with pytest.raises(ValidationError):
            check_positive("n", 1.5)

    def test_accepts_float_when_not_integer(self):
        assert check_positive("x", 1.5, integer=False) == 1.5

    def test_numpy_integer_accepted(self):
        assert check_positive("n", np.int32(4)) == 4

    def test_error_is_value_error_and_repro_error(self):
        with pytest.raises(ValueError):
            check_positive("n", -1)
        with pytest.raises(ReproError):
            check_positive("n", -1)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("n", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative("n", -1)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0

    def test_exclusive_rejects_bound(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_exclusive_rejects_upper_bound(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_exclusive_accepts_interior(self):
        assert check_in_range("x", 0.5, 0.0, 1.0, inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 2.0, 0.0, 1.0)

    def test_rejects_non_real(self):
        with pytest.raises(ValidationError):
            check_in_range("x", "half", 0.0, 1.0)

    def test_error_message_names_strict_op(self):
        with pytest.raises(ValidationError, match="<(?!=)"):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)


class TestCheckIntegerArray:
    def test_converts_to_int64(self):
        out = check_integer_array("a", np.array([1, 2], dtype=np.int16))
        assert out.dtype == np.int64

    def test_rejects_float_array(self):
        with pytest.raises(ValidationError):
            check_integer_array("a", np.array([1.0, 2.0]))

    def test_rejects_integral_valued_floats(self):
        """Whole-number floats still carry a float dtype: no silent truncation."""
        with pytest.raises(ValidationError, match="integer dtype"):
            check_integer_array("a", np.array([1.0, 2.0, 3.0]))

    def test_rejects_bool_and_object(self):
        with pytest.raises(ValidationError):
            check_integer_array("a", np.array([True, False]))
        with pytest.raises(ValidationError):
            check_integer_array("a", np.array([1, None], dtype=object))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_integer_array("a", np.zeros((2, 2), dtype=np.int64))

    def test_bounds(self):
        with pytest.raises(ValidationError):
            check_integer_array("a", np.array([0, 5]), max_value=4)
        with pytest.raises(ValidationError):
            check_integer_array("a", np.array([-1, 2]), min_value=0)

    def test_empty_ok(self):
        out = check_integer_array("a", np.array([], dtype=np.int64), min_value=0)
        assert out.size == 0


class TestCheckDense:
    def test_shape_enforced(self):
        with pytest.raises(ShapeError):
            check_dense("X", np.zeros((3, 4)), rows=5)
        with pytest.raises(ShapeError):
            check_dense("X", np.zeros((3, 4)), cols=5)

    def test_1d_rejected(self):
        with pytest.raises(ShapeError):
            check_dense("X", np.zeros(3))

    def test_contiguous_float64(self):
        x = np.asfortranarray(np.ones((3, 4), dtype=np.float32))
        out = check_dense("X", x)
        assert out.flags["C_CONTIGUOUS"]
        assert out.dtype == np.float64

    def test_no_copy_when_already_ok(self):
        x = np.ones((3, 4))
        assert check_dense("X", x) is x

    def test_degenerate_zero_row_and_zero_col_shapes(self):
        assert check_dense("X", np.zeros((0, 4))).shape == (0, 4)
        assert check_dense("X", np.zeros((3, 0))).shape == (3, 0)
        assert check_dense("X", np.zeros((0, 0)), rows=0, cols=0).shape == (0, 0)

    def test_dtype_none_preserves_float32(self):
        x = np.ones((3, 4), dtype=np.float32)
        out = check_dense("X", x, dtype=None)
        assert out.dtype == np.float32
        assert out is x  # no up-cast copy

    def test_dtype_none_preserves_float64(self):
        x = np.ones((3, 4))
        assert check_dense("X", x, dtype=None) is x

    def test_dtype_none_promotes_integers(self):
        out = check_dense("X", np.ones((2, 2), dtype=np.int32), dtype=None)
        assert out.dtype == np.float64

    def test_dtype_none_still_enforces_shape(self):
        with pytest.raises(ShapeError):
            check_dense("X", np.ones((2, 2), dtype=np.float32), rows=3, dtype=None)

    def test_dtype_none_makes_contiguous(self):
        x = np.asfortranarray(np.ones((3, 4), dtype=np.float32))
        out = check_dense("X", x, dtype=None)
        assert out.flags["C_CONTIGUOUS"] and out.dtype == np.float32


class TestCheckPermutation:
    def test_valid(self):
        p = check_permutation("p", np.array([2, 0, 1]), 3)
        assert p.tolist() == [2, 0, 1]

    def test_wrong_length(self):
        with pytest.raises(ValidationError):
            check_permutation("p", np.array([0, 1]), 3)

    def test_duplicate(self):
        with pytest.raises(ValidationError):
            check_permutation("p", np.array([0, 0, 2]), 3)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_permutation("p", np.array([0, 1, 3]), 3)

    def test_n_zero_with_empty_perm(self):
        out = check_permutation("p", np.array([], dtype=np.int64), 0)
        assert out.size == 0 and out.dtype == np.int64

    def test_n_zero_rejects_nonempty_with_length_error(self):
        """n=0 + non-empty perm: a clean length message, not a bounds one."""
        with pytest.raises(ValidationError, match="length 0"):
            check_permutation("p", np.array([0], dtype=np.int64), 0)

    def test_rejects_negative_n(self):
        with pytest.raises(ValidationError):
            check_permutation("p", np.array([], dtype=np.int64), -1)

    def test_accepts_readonly_array(self):
        perm = np.array([1, 0, 2], dtype=np.int64)
        perm.setflags(write=False)
        out = check_permutation("p", perm, 3)
        assert out.tolist() == [1, 0, 2]
        assert perm.tolist() == [1, 0, 2]  # input untouched

    def test_accepts_memmapped_array(self, tmp_path):
        path = tmp_path / "perm.npy"
        np.save(path, np.array([2, 0, 1], dtype=np.int64))
        mapped = np.load(path, mmap_mode="r")
        out = check_permutation("p", mapped, 3)
        assert out.tolist() == [2, 0, 1]

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_permutation("p", np.zeros((2, 2), dtype=np.int64), 4)


class TestRng:
    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_as_generator_from_int_deterministic(self):
        a = as_generator(42).integers(0, 100, 10)
        b = as_generator(42).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_spawn_generators_independent_and_deterministic(self):
        gens1 = spawn_generators(7, 3)
        gens2 = spawn_generators(7, 3)
        draws1 = [g.integers(0, 1000, 5).tolist() for g in gens1]
        draws2 = [g.integers(0, 1000, 5).tolist() for g in gens2]
        assert draws1 == draws2
        assert draws1[0] != draws1[1]

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert len(t.laps) == 2
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.laps == []

    def test_timed_contextmanager(self):
        sink = {}
        with timed(sink, "x"):
            pass
        with timed(sink, "x"):
            pass
        assert sink["x"] >= 0.0
