"""Tests for the reprolint static-analysis pass (repro.analysis).

Each rule is exercised against a *flagged* fixture (every violation the
rule knows about) and a *clean* counterpart, plus suppression handling,
configuration semantics, the reporters (including a JSON snapshot), and
the CLI front ends.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_SCOPES,
    REGISTRY,
    LintConfig,
    lint_paths,
    lint_source,
    load_config,
    render_json,
    render_text,
)
from repro.analysis.report import render_rule_list
from repro.analysis.runner import module_rel
from repro.analysis.suppressions import collect_suppressions, unjustified
from repro.errors import ConfigError, ValidationError

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "reprolint"

#: module_rel placing a fixture inside every determinism/numerical scope.
IN_SCOPE = "repro/aspt/fixture.py"


def lint_fixture(name: str, module_path: str = IN_SCOPE, config=None):
    """Lint one fixture file under a chosen package-relative path."""
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(
        source,
        display=name,
        config=config or LintConfig(),
        module_path=module_path,
    )


def codes_of(findings):
    """The multiset of codes as a sorted list."""
    return sorted(f.code for f in findings)


class TestDeterminismRules:
    def test_flagged_fixture_fires_all_rd1xx(self):
        findings = lint_fixture("flagged_determinism.py")
        assert codes_of(findings) == [
            "RD101", "RD101",
            "RD102", "RD102",
            "RD103", "RD103", "RD103",
            "RD104", "RD104",
            "RD107",  # the perf_counter read doubles as a direct-call site
        ]

    def test_clean_fixture_is_silent(self):
        assert lint_fixture("clean_determinism.py") == []

    def test_rng_module_is_exempt(self):
        findings = lint_fixture(
            "flagged_determinism.py", module_path="repro/util/rng.py"
        )
        assert "RD101" not in codes_of(findings)
        assert "RD102" not in codes_of(findings)

    def test_set_iteration_only_in_ordering_scopes(self):
        findings = lint_fixture(
            "flagged_determinism.py", module_path="repro/viz/fixture.py"
        )
        assert "RD103" not in codes_of(findings)

    def test_wallclock_only_in_kernel_scopes(self):
        findings = lint_fixture(
            "flagged_determinism.py", module_path="repro/util/timing.py"
        )
        assert "RD104" not in codes_of(findings)


class TestInjectableClockRule:
    #: In RD107's library-wide scope but outside RD104's kernel scopes,
    #: so the clock fixtures exercise RD107 alone.
    CLOCK_SCOPE = "repro/util/fixture.py"

    def test_flagged_fixture_fires_rd107(self):
        findings = lint_fixture("flagged_clock.py", module_path=self.CLOCK_SCOPE)
        assert codes_of(findings) == ["RD107"] * 5

    def test_clean_fixture_is_silent(self):
        assert lint_fixture("clean_clock.py", module_path=self.CLOCK_SCOPE) == []

    def test_observability_layer_is_exempt(self):
        findings = lint_fixture(
            "flagged_clock.py", module_path="repro/observability/tracing.py"
        )
        assert findings == []

    def test_inactive_outside_library_code(self):
        findings = lint_fixture(
            "flagged_clock.py", module_path="scripts/tool.py"
        )
        assert findings == []

    def test_message_points_at_clock_injection(self):
        findings = lint_fixture("flagged_clock.py", module_path=self.CLOCK_SCOPE)
        assert all("clock" in f.message for f in findings)


class TestPerformanceRules:
    def test_flagged_fixture_fires_rd105(self):
        findings = lint_fixture(
            "flagged_performance.py", module_path="repro/kernels/fixture.py"
        )
        assert codes_of(findings) == ["RD105", "RD105", "RD105", "RD105"]

    def test_clean_fixture_is_silent(self):
        assert (
            lint_fixture(
                "clean_performance.py", module_path="repro/kernels/fixture.py"
            )
            == []
        )

    def test_rd105_inactive_outside_kernel_scopes(self):
        findings = lint_fixture("flagged_performance.py")  # repro/aspt path
        assert "RD105" not in codes_of(findings)


class TestAsyncBlockingRule:
    def test_flagged_fixture_fires_rd108(self):
        findings = lint_fixture(
            "flagged_async.py", module_path="repro/serve/fixture.py"
        )
        assert codes_of(findings) == ["RD108"] * 6

    def test_messages_name_the_blocking_call(self):
        findings = lint_fixture(
            "flagged_async.py", module_path="repro/serve/fixture.py"
        )
        messages = " ".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "subprocess.run" in messages
        assert ".read_text" in messages

    def test_clean_fixture_is_silent(self):
        assert (
            lint_fixture("clean_async.py", module_path="repro/serve/fixture.py")
            == []
        )

    def test_rd108_inactive_outside_serve_scope(self):
        findings = lint_fixture("flagged_async.py")  # repro/aspt path
        assert "RD108" not in codes_of(findings)


class TestNumericalRules:
    def test_flagged_fixture_fires_all_rd2xx(self):
        findings = lint_fixture("flagged_numerical.py")
        assert codes_of(findings) == [
            "RD201", "RD201",
            "RD202", "RD202", "RD202",
            "RD203", "RD203",
        ]

    def test_clean_fixture_is_silent(self):
        assert lint_fixture("clean_numerical.py") == []

    def test_rd203_names_the_unvalidated_operand(self):
        findings = lint_fixture("flagged_numerical.py")
        messages = [f.message for f in findings if f.code == "RD203"]
        assert any("'csr'" in m for m in messages)
        assert any("'X'" in m for m in messages)

    def test_rd203_inactive_outside_entrypoint_paths(self):
        findings = lint_fixture(
            "flagged_numerical.py", module_path="repro/viz/fixture.py"
        )
        assert "RD203" not in codes_of(findings)

    BACKEND_SCOPE = "repro/kernels/backends/fixture.py"

    def test_rd204_fires_on_dtypeless_allocations(self):
        findings = lint_fixture(
            "flagged_backend.py", module_path=self.BACKEND_SCOPE
        )
        assert codes_of(findings) == ["RD204", "RD204", "RD204", "RD204"]

    def test_rd204_clean_fixture_is_silent(self):
        assert (
            lint_fixture("clean_backend.py", module_path=self.BACKEND_SCOPE)
            == []
        )

    def test_rd204_inactive_outside_backend_paths(self):
        findings = lint_fixture(
            "flagged_backend.py", module_path="repro/kernels/spmm.py"
        )
        assert "RD204" not in codes_of(findings)


class TestHygieneRules:
    def test_flagged_fixture_fires_rd301_302_303(self):
        findings = lint_fixture("flagged_hygiene.py")
        assert codes_of(findings) == ["RD301", "RD302", "RD302", "RD303"]

    def test_clean_fixture_is_silent(self):
        assert lint_fixture("clean_hygiene.py") == []

    def test_print_exempt_in_cli_modules(self):
        findings = lint_fixture(
            "flagged_hygiene.py", module_path="repro/cli.py"
        )
        assert "RD303" not in codes_of(findings)

    def test_rd304_flags_unrouted_handler(self):
        findings = lint_fixture("flagged_cli.py", module_path="repro/cli.py")
        assert codes_of(findings) == ["RD304"]

    def test_rd304_accepts_registered_handler(self):
        assert lint_fixture("clean_cli.py", module_path="repro/cli.py") == []

    def test_rd304_inactive_outside_cli_paths(self):
        assert lint_fixture("flagged_cli.py", module_path=IN_SCOPE) == []


class TestBroadExceptRule:
    def test_flagged_fixture_fires_rd106(self):
        findings = lint_fixture("flagged_resilience.py")
        assert codes_of(findings) == ["RD106", "RD106", "RD106"]

    def test_clean_fixture_is_silent(self):
        assert lint_fixture("clean_resilience.py") == []

    def test_resilience_layer_is_exempt(self):
        findings = lint_fixture(
            "flagged_resilience.py", module_path="repro/resilience/faults.py"
        )
        assert findings == []

    def test_inactive_outside_library_paths(self):
        findings = lint_fixture(
            "flagged_resilience.py", module_path="scripts/tool.py"
        )
        assert findings == []

    def test_message_names_the_broad_type(self):
        findings = lint_fixture("flagged_resilience.py")
        assert any("except BaseException" in f.message for f in findings)


class TestSuppressions:
    def test_suppressed_codes_are_filtered(self):
        findings = lint_fixture("suppressed.py")
        # Both RD201s are suppressed; the RD301 survives because its
        # suppression names the wrong code.
        assert codes_of(findings) == ["RD301"]

    def test_unjustified_lists_bare_suppressions(self):
        lines = (FIXTURES / "suppressed.py").read_text().splitlines()
        suppressions = collect_suppressions(lines)
        assert len(suppressions) == 3
        bare = unjustified(suppressions)
        assert len(bare) == 1
        assert bare[0].codes == frozenset({"RD201"})

    def test_multiple_codes_one_comment(self):
        source = (
            "import time\n"
            "def f():\n"
            '    """D."""\n'
            "    for v in {1, 2}:  # reprolint: disable=RD103,RD104 -- both\n"
            "        time.time()  # reprolint: disable=RD104 -- fixture\n"
        )
        findings = lint_source(source, display="s.py", config=LintConfig(),
                               module_path=IN_SCOPE)
        assert findings == []


class TestParseErrors:
    def test_syntax_error_becomes_rd001(self):
        findings = lint_source("def broken(:\n", display="bad.py",
                               config=LintConfig())
        assert [f.code for f in findings] == ["RD001"]
        assert "could not be parsed" in findings[0].message


class TestConfig:
    def test_select_restricts_codes(self):
        config = LintConfig(select=frozenset({"RD301"}))
        findings = lint_fixture("flagged_hygiene.py", config=config)
        assert codes_of(findings) == ["RD301"]

    def test_ignore_drops_codes(self):
        config = LintConfig(ignore=frozenset({"RD302"}))
        findings = lint_fixture("flagged_hygiene.py", config=config)
        assert "RD302" not in codes_of(findings)

    def test_per_path_ignores_match_ancestors(self):
        config = LintConfig(per_path_ignores={"pkg": frozenset({"RD301"})})
        assert config.ignored_at("pkg/sub/mod.py", "RD301")
        assert not config.ignored_at("other/mod.py", "RD301")

    def test_scope_star_matches_everything(self):
        config = LintConfig()
        config.scopes["ordered-iteration-paths"] = ("*",)
        findings = lint_fixture(
            "flagged_determinism.py", module_path="anywhere.py", config=config
        )
        assert "RD103" in codes_of(findings)

    def test_load_config_reads_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint]\n"
            'ignore = ["RD303"]\n'
            'exclude = ["vendored"]\n'
            "[tool.reprolint.per-path-ignores]\n"
            '"legacy" = ["RD201"]\n'
            "[tool.reprolint.scopes]\n"
            'cli-paths = ["app/cli.py"]\n'
        )
        config = load_config(tmp_path)
        assert config.ignore == frozenset({"RD303"})
        assert config.exclude == ("vendored",)
        assert config.per_path_ignores["legacy"] == frozenset({"RD201"})
        assert config.scope("cli-paths") == ("app/cli.py",)
        # Unset scopes keep their defaults.
        assert config.scope("entrypoint-paths") == DEFAULT_SCOPES["entrypoint-paths"]

    def test_load_config_rejects_unknown_scope_key(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint.scopes]\nnot-a-scope = []\n"
        )
        with pytest.raises(ConfigError):
            load_config(tmp_path)

    def test_load_config_rejects_bad_types(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.reprolint]\nignore = "RD303"\n'
        )
        with pytest.raises(ConfigError):
            load_config(tmp_path)


class TestRunner:
    def test_module_rel_anchors_at_package(self, tmp_path):
        path = tmp_path / "src" / "repro" / "kernels" / "spmm.py"
        assert module_rel(path, tmp_path) == "repro/kernels/spmm.py"

    def test_module_rel_falls_back_to_root_relative(self, tmp_path):
        path = tmp_path / "scripts" / "tool.py"
        assert module_rel(path, tmp_path) == "scripts/tool.py"

    def test_lint_paths_missing_path_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            lint_paths([tmp_path / "nope"], LintConfig(root=tmp_path))

    def test_lint_paths_honours_exclude(self, tmp_path):
        (tmp_path / "skipme").mkdir()
        (tmp_path / "skipme" / "bad.py").write_text("x = 1 == 1.0\n")
        config = LintConfig(root=tmp_path, exclude=("skipme",))
        assert lint_paths([tmp_path], config) == []

    def test_repo_src_is_clean(self):
        """The acceptance gate: `repro lint src/` reports nothing."""
        root = Path(__file__).resolve().parents[2]
        findings = lint_paths([root / "src"], load_config(root))
        assert findings == [], render_text(findings)


class TestReporters:
    SOURCE = "def f(x):\n    return x == 0.5\n"

    def findings(self):
        return lint_source(self.SOURCE, display="pkg/mod.py",
                           config=LintConfig())

    def test_text_report(self):
        text = render_text(self.findings())
        assert text.splitlines()[0].startswith("pkg/mod.py:2:11: RD201 ")
        assert text.splitlines()[-1] == "1 finding (RD201×1)"

    def test_text_report_empty(self):
        assert render_text([]) == "no findings"

    def test_json_snapshot(self):
        expected = json.dumps(
            {
                "version": 1,
                "summary": {"total": 1, "by_code": {"RD201": 1}},
                "findings": [
                    {
                        "path": "pkg/mod.py",
                        "line": 2,
                        "col": 11,
                        "code": "RD201",
                        "message": "exact float comparison; prefer "
                        "math.isclose / np.isclose (or an integer/None "
                        "sentinel)",
                    }
                ],
            },
            indent=1,
        )
        assert render_json(self.findings()) == expected

    def test_rule_list_covers_registry(self):
        listing = render_rule_list()
        for code in REGISTRY:
            assert code in listing


class TestCli:
    def run_main(self, argv, capsys):
        from repro.analysis.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_flagged_file_exits_one(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1 == 2.0\n")
        monkeypatch.chdir(tmp_path)
        code, out = self.run_main([str(bad)], capsys)
        assert code == 1
        assert "RD201" in out

    def test_clean_file_exits_zero(self, tmp_path, monkeypatch, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        code, out = self.run_main([str(good)], capsys)
        assert code == 0
        assert "no findings" in out

    def test_json_format_is_parseable(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1 == 2.0\n")
        monkeypatch.chdir(tmp_path)
        code, out = self.run_main([str(bad), "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["summary"]["by_code"] == {"RD201": 1}

    def test_select_and_ignore_flags(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1 == 2.0\n")
        monkeypatch.chdir(tmp_path)
        code, _ = self.run_main([str(bad), "--select", "RD301"], capsys)
        assert code == 0
        code, _ = self.run_main([str(bad), "--ignore", "RD201"], capsys)
        assert code == 0

    def test_list_rules(self, capsys):
        code, out = self.run_main(["--list-rules"], capsys)
        assert code == 0
        assert "RD101" in out and "RD304" in out

    def test_python_dash_m_entry(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1 == 2.0\n")
        import os
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad)],
            capture_output=True, text=True, cwd=tmp_path, env=env,
        )
        assert proc.returncode == 1
        assert "RD201" in proc.stdout
