"""Unit tests for the pluggable compiled kernel backends.

Covers the registry (registration, resolution, graceful degradation),
the specialization spec (fingerprint stability, descriptor round trip),
per-spec code generation, the process-global artifact cache, session
integration, and the plan pipeline/persistence integration
(``attach_backend``, npz save/load, plan-store round trip).
"""

import warnings

import numpy as np
import pytest

from conftest import random_csr
from repro.errors import BackendUnavailable, ConfigError, DegradedExecution
from repro.kernels import KernelSession, spmm
from repro.kernels.backends import (
    CompiledKernel,
    KernelBackend,
    SpecializationSpec,
    available_backends,
    backend_names,
    compiled_artifact,
    get_backend,
    resolve_backend,
    specialize,
)
from repro.kernels.backends.codegen_backend import (
    render_source as codegen_source,
)
from repro.kernels.backends.numba_backend import render_source as numba_source
from repro.kernels.state import CsrState
from repro.observability.metrics import METRICS
from repro.reorder import ReorderConfig, attach_backend, build_plan
from repro.sparse import CSRMatrix


@pytest.fixture
def matrix(rng):
    return random_csr(rng, 40, 32, density=0.1)


class TestRegistry:
    def test_numpy_is_first_and_always_available(self):
        names = backend_names()
        assert names[0] == "numpy"
        assert "codegen" in names and "numba" in names
        assert "numpy" in available_backends()
        assert "codegen" in available_backends()

    def test_get_backend_unknown_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_resolve_none_and_numpy_are_the_reference(self):
        for request in (None, "numpy"):
            backend, provenance = resolve_backend(request)
            assert backend.name == "numpy"
            assert provenance == ()

    def test_resolve_unknown_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_resolve_unavailable_degrades_with_provenance(self):
        class Ghost(KernelBackend):
            name = "ghost-unit"

            @classmethod
            def available(cls):
                return False

            @classmethod
            def unavailable_reason(cls):
                return "unit-test ghost"

            def compile(self, spec):  # pragma: no cover - never reached
                raise AssertionError

        from repro.kernels.backends.registry import _REGISTRY

        _REGISTRY["ghost-unit"] = Ghost()
        try:
            fallback = METRICS.counter("kernels.backend_fallback")
            before = fallback.value
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                backend, provenance = resolve_backend("ghost-unit")
            assert backend.name == "numpy"
            assert provenance == ("backend:ghost-unit->numpy: unit-test ghost",)
            assert fallback.value == before + 1
            assert any(w.category is DegradedExecution for w in caught)
        finally:
            del _REGISTRY["ghost-unit"]


class TestSpecializationSpec:
    def test_fingerprint_is_stable_and_field_sensitive(self):
        a = SpecializationSpec(kernel="spmm", chunk_k=64)
        b = SpecializationSpec(kernel="spmm", chunk_k=64)
        c = SpecializationSpec(kernel="spmm", chunk_k=32)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_descriptor_round_trip(self):
        spec = SpecializationSpec(
            kernel="sddmm",
            dtype="float32",
            chunk_k=48,
            nonempty_rows=True,
            k_hint=512,
            panel_height=16,
            dense_bucket=7,
        )
        assert SpecializationSpec.from_descriptor(spec.to_descriptor()) == spec

    def test_from_descriptor_ignores_unknown_keys(self):
        spec = SpecializationSpec(chunk_k=24)
        parts = spec.to_descriptor() + ("future_field=1",)
        assert SpecializationSpec.from_descriptor(parts) == spec

    def test_specialize_reads_matrix_structure(self, matrix):
        spec = specialize(matrix, kernel="spmm", dtype="float64", k_hint=64)
        dense_rows = np.all(matrix.row_lengths() > 0)
        assert spec.nonempty_rows == bool(dense_rows and matrix.nnz > 0)
        assert spec.k_hint == 64

    def test_specialize_reads_plan_structure(self, matrix):
        plan = build_plan(matrix, ReorderConfig(siglen=16, panel_height=8))
        spec = specialize(plan, kernel="spmm")
        assert spec.panel_height == 8
        assert 0 <= spec.dense_bucket <= 10

    def test_specialize_rejects_unknown_target(self):
        with pytest.raises(TypeError):
            specialize(object())


class TestCodegenSpecialization:
    def test_chunk_width_is_baked_into_source(self):
        source = codegen_source(SpecializationSpec(kernel="spmm", chunk_k=37))
        assert "37" in source

    def test_empty_row_epilogue_is_elided_for_dense_row_matrices(self):
        with_empties = codegen_source(
            SpecializationSpec(kernel="spmm", nonempty_rows=False)
        )
        without = codegen_source(
            SpecializationSpec(kernel="spmm", nonempty_rows=True)
        )
        assert "state.empty" in with_empties
        assert "state.empty" not in without

    def test_numba_sddmm_accumulator_follows_dtype(self):
        f32 = numba_source(SpecializationSpec(kernel="sddmm", dtype="float32"))
        f64 = numba_source(SpecializationSpec(kernel="sddmm", dtype="float64"))
        assert "np.float32(0.0)" in f32
        assert "np.float32(0.0)" not in f64

    def test_compiled_kernel_descriptor_names_backend_and_fingerprint(self):
        spec = SpecializationSpec(kernel="spmm", chunk_k=16)
        kernel = get_backend("codegen").compile(spec)
        descriptor = kernel.descriptor()
        assert "backend=codegen" in descriptor
        assert f"fingerprint={spec.fingerprint()}" in descriptor
        assert isinstance(kernel, CompiledKernel)
        assert kernel.source is not None


class TestArtifactCache:
    def test_warm_artifact_skips_recompilation(self):
        spec = SpecializationSpec(kernel="spmm", chunk_k=53, k_hint=1234)
        compile_counter = METRICS.counter("kernels.backend_compile")
        backend = get_backend("codegen")
        cold = compiled_artifact(backend, spec)
        after_cold = compile_counter.value
        warm = compiled_artifact(backend, spec)
        assert warm is cold
        assert compile_counter.value == after_cold  # no second compile
        assert cold.compile_seconds >= 0.0

    def test_unavailable_backend_compile_raises(self):
        numba = get_backend("numba")
        if numba.available():  # pragma: no cover - CI backends lane
            pytest.skip("numba importable here; unavailability not testable")
        with pytest.raises(BackendUnavailable):
            compiled_artifact(
                numba, SpecializationSpec(kernel="spmm", chunk_k=51)
            )


class TestSessionIntegration:
    def test_session_reports_backend_and_matches_reference(
        self, matrix, rng, backend_name
    ):
        X = rng.normal(size=(matrix.n_cols, 24))
        reference = spmm(matrix, X)
        session = KernelSession(matrix, backend=backend_name)
        assert session.backend == backend_name
        assert session.backend_provenance == ()
        got = session.run(X)
        if backend_name == "numba":
            np.testing.assert_array_max_ulp(got, reference, maxulp=1)
        else:
            np.testing.assert_array_equal(got, reference)

    def test_unavailable_backend_session_degrades_to_numpy(self, matrix, rng):
        numba = get_backend("numba")
        if numba.available():  # pragma: no cover - CI backends lane
            pytest.skip("numba importable here; degradation not testable")
        X = rng.normal(size=(matrix.n_cols, 8))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = KernelSession(matrix, backend="numba")
        assert session.backend == "numpy"
        assert session.backend_provenance
        assert session.backend_provenance[0].startswith("backend:numba->numpy")
        assert any(w.category is DegradedExecution for w in caught)
        np.testing.assert_array_equal(session.run(X), spmm(matrix, X))


class TestPlanIntegration:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            ReorderConfig(backend="cuda")

    def test_build_plan_attaches_backend_and_artifact(self, matrix):
        config = ReorderConfig(siglen=16, panel_height=8, backend="codegen")
        plan = build_plan(matrix, config)
        assert plan.backend == "codegen"
        assert plan.artifact  # descriptor recorded next to the plan
        assert not plan.backend_degraded
        assert not plan.degraded  # backend state never taints plan provenance

    def test_backend_degradation_stays_out_of_plan_provenance(self, matrix):
        numba = get_backend("numba")
        if numba.available():  # pragma: no cover - CI backends lane
            pytest.skip("numba importable here; degradation not testable")
        config = ReorderConfig(siglen=16, panel_height=8, backend="numba")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecution)
            plan = build_plan(matrix, config)
        assert plan.backend == "numpy"
        assert plan.backend_degraded
        assert not plan.degraded
        assert plan.provenance == ()

    def test_attach_backend_is_idempotent_on_numpy(self, matrix):
        plan = build_plan(matrix, ReorderConfig(siglen=16, panel_height=8))
        again = attach_backend(plan, ReorderConfig(siglen=16, panel_height=8))
        assert again.backend == "numpy"
        assert again.artifact == ()

    def test_plan_save_load_round_trips_backend(self, matrix, tmp_path):
        config = ReorderConfig(siglen=16, panel_height=8, backend="codegen")
        plan = build_plan(matrix, config)
        path = tmp_path / "plan.npz"
        plan.save(path)
        from repro.reorder.pipeline import ExecutionPlan

        loaded = ExecutionPlan.load(path, matrix)
        assert loaded.backend == "codegen"
        assert tuple(loaded.artifact) == tuple(plan.artifact)


class TestPlanStoreIntegration:
    def test_backend_enters_the_cache_key(self, matrix):
        from repro.planstore import plan_key

        base = ReorderConfig(siglen=16, panel_height=8)
        other = ReorderConfig(siglen=16, panel_height=8, backend="codegen")
        assert plan_key(matrix, base) != plan_key(matrix, other)

    def test_disk_round_trip_preserves_backend_and_artifact(
        self, matrix, tmp_path
    ):
        from repro.planstore import PlanStore

        config = ReorderConfig(siglen=16, panel_height=8, backend="codegen")
        store = PlanStore(cache_dir=tmp_path)
        cold = build_plan(matrix, config, cache=store)
        # A fresh store over the same directory must hit the disk tier
        # and come back with the same backend + artifact descriptor.
        fresh = PlanStore(cache_dir=tmp_path)
        warm = build_plan(matrix, config, cache=fresh)
        assert fresh.stats()["disk"]["hits"] == 1
        assert warm.backend == "codegen"
        assert tuple(warm.artifact) == tuple(cold.artifact)

    def test_warm_hit_resolves_backend_in_current_environment(
        self, matrix, tmp_path
    ):
        """A cached numba entry must not pin numba on a numba-less host."""
        from repro.planstore import PlanDecisions, PlanStore

        config = ReorderConfig(siglen=16, panel_height=8, backend="numba")
        store = PlanStore(cache_dir=tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecution)
            plan = build_plan(matrix, config, cache=store)
        # Whatever environment wrote the entry, materialising re-resolves:
        # on this host the result is exactly what resolve_backend says now.
        expected = resolve_backend("numba", warn=False)[0].name
        assert plan.backend == expected
        decisions = PlanDecisions.from_plan(plan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecution)
            rebuilt = decisions.materialise(matrix, config)
        assert rebuilt.backend == expected


class TestBackendOneShotDispatch:
    def test_spmm_backend_kwarg_dispatches(self, matrix, rng, backend_name):
        X = rng.normal(size=(matrix.n_cols, 12))
        reference = spmm(matrix, X)
        got = spmm(matrix, X, backend=backend_name)
        if backend_name == "numba":
            np.testing.assert_array_max_ulp(got, reference, maxulp=1)
        else:
            np.testing.assert_array_equal(got, reference)

    def test_spmm_backend_fills_caller_buffer(self, matrix, rng):
        X = rng.normal(size=(matrix.n_cols, 12))
        out = np.empty((matrix.n_rows, 12), dtype=np.float64)
        got = spmm(matrix, X, out=out, backend="codegen")
        assert got is out
        np.testing.assert_array_equal(out, spmm(matrix, X))


class TestCsrStateAlias:
    def test_session_module_keeps_private_aliases(self):
        # Back-compat: earlier code (and pickled references) used the
        # private names; they must stay importable.
        from repro.kernels.session import _CsrSteadyState, _DirectWorkspace

        assert _CsrSteadyState is CsrState
        assert _DirectWorkspace is not None

    def test_state_multiply_matches_spmm(self, matrix, rng):
        X = rng.normal(size=(matrix.n_cols, 16))
        state = CsrState(matrix)
        out = np.empty((matrix.n_rows, 16), dtype=np.float64)
        from repro.util.workspace import DirectWorkspace

        state.multiply(X, out, DirectWorkspace(), 8)
        np.testing.assert_array_equal(out, spmm(matrix, X))
