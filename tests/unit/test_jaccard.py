"""Unit tests for repro.similarity.jaccard."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix
from repro.similarity import (
    average_consecutive_similarity,
    consecutive_similarities,
    jaccard_for_pairs,
    jaccard_rows,
    pairwise_jaccard_dense,
)

from conftest import random_csr


class TestJaccardRows:
    def test_paper_values(self, paper_matrix):
        # §3.2: J(S0, S4) = 2/3 and J(S2, S4) = 1/4.
        assert jaccard_rows(paper_matrix, 0, 4) == pytest.approx(2 / 3)
        assert jaccard_rows(paper_matrix, 2, 4) == pytest.approx(1 / 4)

    def test_identical_rows(self):
        m = CSRMatrix.from_dense([[1.0, 1.0, 0.0], [2.0, 3.0, 0.0]])
        assert jaccard_rows(m, 0, 1) == 1.0

    def test_disjoint_rows(self):
        m = CSRMatrix.from_dense([[1.0, 0.0], [0.0, 1.0]])
        assert jaccard_rows(m, 0, 1) == 0.0

    def test_empty_rows_are_dissimilar(self):
        m = CSRMatrix.from_dense([[0.0, 0.0], [0.0, 0.0]])
        assert jaccard_rows(m, 0, 1) == 0.0

    def test_empty_vs_nonempty(self):
        m = CSRMatrix.from_dense([[0.0, 0.0], [1.0, 0.0]])
        assert jaccard_rows(m, 0, 1) == 0.0

    def test_symmetry(self, paper_matrix):
        for i in range(6):
            for j in range(6):
                assert jaccard_rows(paper_matrix, i, j) == pytest.approx(
                    jaccard_rows(paper_matrix, j, i)
                )

    def test_values_do_not_matter(self, paper_matrix):
        scaled = paper_matrix.with_values(np.full(13, 1e9))
        assert jaccard_rows(scaled, 0, 4) == pytest.approx(2 / 3)


class TestJaccardForPairs:
    def test_matches_single_pair_version(self, rng):
        m = random_csr(rng, 20, 15, 0.2)
        pairs = np.array([[i, j] for i in range(20) for j in range(i + 1, 20)])
        batch = jaccard_for_pairs(m, pairs)
        for (i, j), s in zip(pairs, batch):
            assert s == pytest.approx(jaccard_rows(m, int(i), int(j)))

    def test_empty_pairs(self, paper_matrix):
        out = jaccard_for_pairs(paper_matrix, np.empty((0, 2), dtype=np.int64))
        assert out.size == 0

    def test_bad_shape_rejected(self, paper_matrix):
        with pytest.raises(ValueError):
            jaccard_for_pairs(paper_matrix, np.array([[0, 1, 2]]))

    def test_self_pairs(self, paper_matrix):
        out = jaccard_for_pairs(paper_matrix, np.array([[0, 0], [3, 3]]))
        np.testing.assert_allclose(out, [1.0, 1.0])

    def test_pairs_with_empty_rows(self):
        m = CSRMatrix.from_dense([[1.0, 0.0], [0.0, 0.0], [1.0, 0.0]])
        out = jaccard_for_pairs(m, np.array([[0, 1], [1, 1], [0, 2]]))
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0])


class TestConsecutiveSimilarities:
    def test_well_clustered_example(self):
        # Paper Fig. 7a: identical rows in groups of three -> average 0.8.
        # Build: rows 0-2 identical, rows 3-5 identical, groups disjoint.
        dense = np.zeros((6, 6))
        dense[:3, [0, 2]] = 1.0
        dense[3:, [3, 5]] = 1.0
        m = CSRMatrix.from_dense(dense)
        sims = consecutive_similarities(m)
        np.testing.assert_allclose(sims, [1.0, 1.0, 0.0, 1.0, 1.0])
        assert average_consecutive_similarity(m) == pytest.approx(0.8)

    def test_diagonal_matrix_zero(self):
        # Paper Fig. 7b: a diagonal matrix has no inter-row reuse.
        m = CSRMatrix.from_dense(np.eye(8))
        assert average_consecutive_similarity(m) == 0.0

    def test_single_row(self):
        m = CSRMatrix.from_dense([[1.0, 0.0]])
        assert consecutive_similarities(m).size == 0
        assert average_consecutive_similarity(m) == 0.0

    def test_matches_pairwise_loop(self, rng):
        m = random_csr(rng, 30, 20, 0.15)
        sims = consecutive_similarities(m)
        for i in range(29):
            assert sims[i] == pytest.approx(jaccard_rows(m, i, i + 1))


class TestPairwiseDense:
    def test_matches_jaccard_rows(self, paper_matrix):
        full = pairwise_jaccard_dense(paper_matrix)
        for i in range(6):
            for j in range(6):
                if i == j:
                    continue
                assert full[i, j] == pytest.approx(jaccard_rows(paper_matrix, i, j))

    def test_diagonal_one_for_nonempty(self, paper_matrix):
        full = pairwise_jaccard_dense(paper_matrix)
        np.testing.assert_allclose(np.diag(full), np.ones(6))

    def test_empty_row_diagonal_zero(self):
        m = CSRMatrix.from_dense([[0.0, 0.0], [1.0, 0.0]])
        full = pairwise_jaccard_dense(m)
        assert full[0, 0] == 0.0
