"""Degenerate-shape sweep: 0-row, 0-column, 1x1 and single-row matrices
pushed through the entire stack (formats, similarity, tiling, pipeline,
kernels, model).  Degenerate inputs are where container libraries rot."""

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.gpu import GPUExecutor
from repro.kernels import sddmm, spmm, spmv
from repro.reorder import ReorderConfig, build_plan
from repro.similarity import LSHIndex, average_consecutive_similarity, minhash_signatures
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    ELLMatrix,
    csr_to_csc,
    permute_csr_rows,
    transpose_csr,
)

from conftest import maybe_streamed

DEGENERATE_SHAPES = [(0, 5), (5, 0), (0, 0), (1, 1), (1, 8), (8, 1)]


@pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
class TestFormatsDegenerate:
    def test_empty_roundtrips(self, shape, streamed):
        m = maybe_streamed(CSRMatrix.empty(shape), streamed)
        m.validate()
        assert m.to_coo().to_csr().allclose(m)
        assert csr_to_csc(m).to_csr().allclose(m)
        assert transpose_csr(transpose_csr(m)).allclose(m)
        ell = ELLMatrix.from_csr(m)
        ell.validate()
        assert ell.to_csr().nnz == 0

    def test_permutation(self, shape):
        m = CSRMatrix.empty(shape)
        out = permute_csr_rows(m, np.arange(shape[0], dtype=np.int64))
        assert out.shape == shape


@pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
class TestSimilarityDegenerate:
    def test_minhash(self, shape):
        m = CSRMatrix.empty(shape)
        sig = minhash_signatures(m, 8, seed=0)
        assert sig.shape == (shape[0], 8)

    def test_lsh(self, shape):
        m = CSRMatrix.empty(shape)
        pairs, sims = LSHIndex(siglen=8, bsize=2, seed=0).candidate_pairs(m)
        assert pairs.shape[0] == 0

    def test_avg_similarity(self, shape):
        assert average_consecutive_similarity(CSRMatrix.empty(shape)) == 0.0


@pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
class TestPipelineDegenerate:
    def test_build_plan_and_kernels(self, shape, streamed):
        m = maybe_streamed(CSRMatrix.empty(shape), streamed)
        plan = build_plan(m, ReorderConfig(siglen=8, panel_height=2))
        X = np.ones((shape[1], 3))
        np.testing.assert_allclose(plan.spmm(X), np.zeros((shape[0], 3)))
        Y = np.ones((shape[0], 3))
        assert plan.sddmm(X, Y).nnz == 0

    def test_direct_kernels(self, shape, backend_name, streamed):
        m = maybe_streamed(CSRMatrix.empty(shape), streamed)
        X = np.ones((shape[1], 2))
        np.testing.assert_allclose(
            spmm(m, X, backend=backend_name), np.zeros((shape[0], 2))
        )
        out = sddmm(m, X, np.ones((shape[0], 2)), backend=backend_name)
        assert out.nnz == 0
        np.testing.assert_allclose(
            spmv(m, np.ones(shape[1]), backend=backend_name),
            np.zeros(shape[0]),
        )

    def test_tiling(self, shape):
        tiled = tile_matrix(CSRMatrix.empty(shape), 2, 2)
        assert tiled.dense_ratio == 0.0


@pytest.mark.parametrize("shape", [(1, 1), (1, 8), (8, 1)])
class TestModelDegenerateNonEmptyShapes:
    def test_costs_with_one_nnz(self, shape):
        coo = COOMatrix.from_arrays(
            shape, np.array([0]), np.array([0]), [2.0]
        )
        m = coo.to_csr()
        ex = GPUExecutor(cache_mode="exact")
        for variant in ("cusparse", "rowwise"):
            assert ex.spmm_cost(m, 16, variant).time_s > 0
        assert ex.sddmm_cost(m, 16, "rowwise").time_s > 0
        assert ex.spmv_cost(m).time_s > 0
        tiled = tile_matrix(m, 1, 1)
        assert ex.spmm_cost(tiled, 16, "aspt").time_s > 0


class TestSingleRowMatrix:
    def test_full_pipeline_single_row(self, rng, streamed):
        dense = np.zeros((1, 16))
        dense[0, [2, 7, 9]] = 1.0
        m = maybe_streamed(CSRMatrix.from_dense(dense), streamed)
        plan = build_plan(m, ReorderConfig(siglen=8, panel_height=4))
        X = rng.normal(size=(16, 4))
        np.testing.assert_allclose(plan.spmm(X), spmm(m, X))
        assert plan.row_order.tolist() == [0]

    def test_online_reorderer_single_row(self):
        from repro.reorder import OnlineReorderer

        idx = OnlineReorderer(16, siglen=8)
        idx.insert_row([3, 5])
        assert idx.order().tolist() == [0]
