"""Tests for the observability layer (repro.observability).

Covers the tracer (span trees, Chrome export, golden schema snapshot),
the gating contract (module-level ``span`` is a shared no-op until a
tracer is installed), the metrics registry, the counter-migration
compatibility surfaces (WorkspacePool, CacheStats, KernelSession,
DiskPlanStore), the text reporters, and the end-to-end wiring
(``repro trace``, ``run_experiment(trace=)``, per-record
``stage_seconds``).
"""

import json
import threading

import numpy as np
import pytest

from conftest import FakeClock
from repro.datasets import hidden_clusters
from repro.observability import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    active_tracer,
    format_metrics,
    install_tracer,
    span,
    trace_summary,
    tracing,
    uninstall_tracer,
)
from repro.observability.tracing import _NULL_SPAN


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    uninstall_tracer()
    yield
    uninstall_tracer()


class TestTracerTree:
    def test_nested_spans_build_a_tree(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracer.span("root", rows=6):
            with tracer.span("child_a"):
                pass
            with tracer.span("child_b"):
                pass
        (root,) = tracer.to_dicts()
        assert root["name"] == "root"
        assert root["attrs"] == {"rows": 6}
        assert [c["name"] for c in root["children"]] == ["child_a", "child_b"]

    def test_durations_come_from_the_injected_clock(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracer.span("timed"):
            fake_clock.advance(10.0)
        (root,) = tracer.to_dicts()
        # One construction read, one start read, then +10s, one end read:
        # the span lasts the advance plus one auto-step.
        assert root["duration_s"] == pytest.approx(11.0)

    def test_start_times_are_epoch_relative(self, fake_clock):
        fake_clock.advance(1000.0)  # clock epoch far from zero
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracer.span("first"):
            pass
        (root,) = tracer.to_dicts()
        assert root["start_s"] == pytest.approx(1.0)  # one auto-step

    def test_sibling_roots_accumulate(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert [r["name"] for r in tracer.to_dicts()] == ["one", "two"]

    def test_exception_records_error_type_and_propagates(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (root,) = tracer.to_dicts()
        assert root["error"] == "ValueError"
        assert root["duration_s"] > 0  # still closed

    def test_set_updates_attributes_mid_span(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracer.span("s", a=1) as s:
            s.set(b=2, a=3)
        (root,) = tracer.to_dicts()
        assert root["attrs"] == {"a": 3, "b": 2}

    def test_threads_get_deterministic_tids_and_separate_stacks(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)

        def work():
            with tracer.span("worker"):
                pass

        with tracer.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        roots = tracer.to_dicts()
        # The worker span is a *root* of its own thread, not a child of
        # "main", and tids are assigned 1, 2, ... in registration order.
        assert sorted(r["name"] for r in roots) == ["main", "worker"]
        assert {r["tid"] for r in roots} == {1, 2}
        assert all("children" not in r for r in roots)


class TestChromeTrace:
    def _traced(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracer.span("build", nnz=13):
            with tracer.span("stage"):
                pass
        return tracer

    def test_document_shape(self, fake_clock):
        doc = self._traced(fake_clock).chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert [e["name"] for e in doc["traceEvents"]] == ["build", "stage"]
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == 1
            assert event["tid"] == 1
            assert event["dur"] >= 0

    def test_timestamps_are_microseconds(self, fake_clock):
        doc = self._traced(fake_clock).chrome_trace()
        build = doc["traceEvents"][0]
        # FakeClock steps 1s per read: construction (epoch), build-start,
        # stage-start, stage-end, build-end — so build starts 1s after
        # the epoch and spans 3s, exported in microseconds.
        assert build["ts"] == pytest.approx(1e6)
        assert build["dur"] == pytest.approx(3e6)

    def test_write_chrome_trace_is_loadable_json(self, fake_clock, tmp_path):
        path = tmp_path / "out.trace.json"
        self._traced(fake_clock).write_chrome_trace(path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert [e["name"] for e in doc["traceEvents"]] == ["build", "stage"]

    def test_open_spans_are_omitted(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        dangling = tracer.span("open")
        dangling.__enter__()
        assert tracer.chrome_trace()["traceEvents"] == []

    def test_golden_schema_snapshot(self):
        """The exact export for a pinned clock — the schema contract."""
        clock = FakeClock(start=0.0, step=1.0)
        tracer = Tracer(clock=clock, pid=1)
        with tracer.span("build_plan", rows=6):
            with tracer.span("minhash"):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("kernel.run"):
                raise RuntimeError("boom")
        # Clock reads: epoch=0, build-start=1, minhash-start=2,
        # minhash-end=3, build-end=4, kernel-start=5, kernel-end=6.
        # chrome_trace walks roots first, then children (build_plan,
        # kernel.run, then minhash).
        assert tracer.chrome_trace() == {
            "traceEvents": [
                {
                    "name": "build_plan",
                    "cat": "repro",
                    "ph": "X",
                    "ts": 1_000_000.0,
                    "dur": 3_000_000.0,
                    "pid": 1,
                    "tid": 1,
                    "args": {"rows": 6},
                },
                {
                    "name": "minhash",
                    "cat": "repro",
                    "ph": "X",
                    "ts": 2_000_000.0,
                    "dur": 1_000_000.0,
                    "pid": 1,
                    "tid": 1,
                },
                {
                    "name": "kernel.run",
                    "cat": "repro",
                    "ph": "X",
                    "ts": 5_000_000.0,
                    "dur": 1_000_000.0,
                    "pid": 1,
                    "tid": 1,
                    "args": {"error": "RuntimeError"},
                },
            ],
            "displayTimeUnit": "ms",
        }


class TestGating:
    def test_span_is_shared_noop_when_disabled(self):
        assert active_tracer() is None
        s = span("anything", k=1)
        assert s is _NULL_SPAN
        assert span("other") is s  # the same singleton every time
        with s:
            s.set(ignored=True)  # all no-ops

    def test_installed_tracer_receives_module_level_spans(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracing(tracer):
            with span("visible", k=2):
                pass
        assert [r["name"] for r in tracer.to_dicts()] == ["visible"]
        # After the context, tracing is off again.
        assert span("gone") is _NULL_SPAN

    def test_double_install_raises(self):
        first = Tracer()
        install_tracer(first)
        try:
            with pytest.raises(RuntimeError):
                install_tracer(Tracer())
            first.install()  # re-installing the active tracer is fine
        finally:
            uninstall_tracer(first)

    def test_uninstall_is_idempotent_and_scoped(self):
        first = Tracer()
        install_tracer(first)
        Tracer().uninstall()  # not active: a no-op
        assert active_tracer() is first
        first.uninstall()
        first.uninstall()
        assert active_tracer() is None

    def test_tracer_as_context_manager(self):
        with Tracer() as tracer:
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_tracing_makes_a_fresh_tracer_when_none_given(self):
        with tracing() as tracer:
            assert active_tracer() is tracer
            with span("inner"):
                pass
        assert [r["name"] for r in tracer.to_dicts()] == ["inner"]

    def test_env_var_installs_process_global_tracer(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        env["REPRO_TRACE"] = "1"
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.observability import active_tracer;"
                "print(active_tracer() is not None)",
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert proc.stdout.strip() == "True"


class TestMetricsRegistry:
    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("x.hits", "described once")
        b = registry.counter("x.hits")
        assert a is b
        assert a.description == "described once"

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")
        with pytest.raises(TypeError):
            registry.histogram("name")

    def test_counter_monotonicity(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 5

    def test_child_rolls_up_to_parent(self):
        parent = Counter("p")
        child_a, child_b = parent.child(), parent.child()
        child_a.inc(3)
        child_b.inc(2)
        parent.inc()
        assert (child_a.value, child_b.value, parent.value) == (3, 2, 6)

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(10.0)
        g.add(-2.5)
        assert g.value == 7.5
        g.reset()
        assert g.value == 0.0

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0
        assert snap["buckets"] == {"1.0": 2, "10.0": 1, "inf": 1}

    def test_snapshot_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.histogram("c.lat", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.lat"]
        assert snap["a.level"] == 1.5
        assert snap["b.count"] == 2
        assert snap["c.lat"]["count"] == 1

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        c = registry.counter("c")
        c.inc(9)
        registry.reset()
        assert registry.counter("c") is c
        assert c.value == 0


class TestWorkspacePoolCompat:
    """Satellite (d): the migrated counters keep their old surface."""

    def test_hits_misses_evictions_attributes_still_read(self):
        from repro.util.workspace import WorkspacePool

        pool = WorkspacePool()
        with pool.lease() as ws:
            ws.scratch((4, 8))
        with pool.lease() as ws:
            ws.scratch((4, 8))
        assert pool.misses == 1
        assert pool.hits == 1
        assert pool.evictions == 0
        stats = pool.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_eviction_counts_when_over_budget(self):
        from repro.util.workspace import WorkspacePool

        pool = WorkspacePool(max_bytes=0)
        block = pool.take((8,))
        pool.give(block)
        assert pool.evictions == 1

    def test_pool_counters_roll_up_to_global_instruments(self):
        from repro.util.workspace import WorkspacePool

        before = METRICS.counter("workspace.miss").value
        pool = WorkspacePool()
        with pool.lease() as ws:
            ws.scratch((2, 2))
        assert METRICS.counter("workspace.miss").value == before + 1

    def test_two_pools_count_independently(self):
        from repro.util.workspace import WorkspacePool

        a, b = WorkspacePool(), WorkspacePool()
        with a.lease() as ws:
            ws.scratch((2, 2))
        assert (a.misses, b.misses) == (1, 0)


class TestCacheStatsCompat:
    def test_augmented_assignment_still_works(self):
        from repro.planstore.memory import CacheStats

        stats = CacheStats()
        stats.hits += 1
        stats.hits += 1
        stats.misses += 3
        assert (stats.hits, stats.misses) == (2, 3)
        assert stats.as_dict() == {
            "hits": 2, "misses": 3, "evictions": 0, "puts": 0,
        }

    def test_decreasing_a_counter_raises(self):
        from repro.planstore.memory import CacheStats

        stats = CacheStats()
        stats.puts += 2
        with pytest.raises(ValueError):
            stats.puts -= 1

    def test_lru_cache_still_counts(self):
        from repro.planstore.memory import LRUPlanCache

        cache = LRUPlanCache(max_entries=4)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1


class TestSessionFallbackCompat:
    def test_fallbacks_attribute_counts_degraded_runs(self):
        from repro.kernels import KernelSession
        from repro.util.workspace import WorkspacePool

        matrix = hidden_clusters(10, 4, 64, 6, seed=0)
        session = KernelSession(
            matrix, pool=WorkspacePool(max_lease_bytes=0)
        )
        X = np.random.default_rng(0).normal(size=(matrix.n_cols, 8))
        assert session.fallbacks == 0
        with pytest.warns(Warning):
            out = session.run(X)
        assert session.fallbacks == 1
        from repro.kernels import spmm

        np.testing.assert_array_equal(out, spmm(matrix, X))


class TestQuarantineCounter:
    def test_quarantine_increments_global_instrument(self, tmp_path):
        from repro.datasets import hidden_clusters as hc
        from repro.planstore import DiskPlanStore, PlanDecisions
        from repro.reorder import ReorderConfig, build_plan

        matrix = hc(16, 8, 256, 8, noise=0.1, seed=7)
        decisions = PlanDecisions.from_plan(
            build_plan(matrix, ReorderConfig(siglen=32, panel_height=8))
        )
        key = "0123456789abcdef0123456789abcdef"
        store = DiskPlanStore(tmp_path)
        store.put(key, decisions)
        path = store.path_for(key)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])

        before = METRICS.counter("planstore.quarantine").value
        assert store.get(key) is None
        assert METRICS.counter("planstore.quarantine").value == before + 1


class TestReporters:
    def test_trace_summary_renders_tree(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        text = trace_summary(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("span")
        assert any(line.startswith("root") for line in lines)
        assert any(line.startswith("  leaf") for line in lines)
        assert "100.0%" in text

    def test_trace_summary_empty(self):
        assert trace_summary(Tracer()) == "(no spans recorded)"

    def test_trace_summary_marks_errors(self, fake_clock):
        tracer = Tracer(clock=fake_clock, pid=1)
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError
        assert "[error: ValueError]" in trace_summary(tracer)

    def test_format_metrics_skips_zero_instruments(self):
        snap = {
            "planstore.hit": 3,
            "planstore.miss": 0,
            "lat": {"count": 2, "sum": 0.5, "min": 0.1, "max": 0.4,
                    "buckets": {"inf": 2}},
            "idle": {"count": 0, "sum": 0.0, "min": None, "max": None,
                     "buckets": {"inf": 0}},
        }
        text = format_metrics(snap)
        assert "planstore.hit" in text
        assert "planstore.miss" not in text
        assert "count=2" in text
        assert "idle" not in text

    def test_format_metrics_empty(self):
        assert format_metrics({"a": 0}) == "(no activity recorded)"


class TestPipelineTracing:
    def test_traced_build_plan_covers_every_stage(self):
        from repro.reorder import ReorderConfig, build_plan

        matrix = hidden_clusters(40, 8, 1024, 12, noise=0.1, seed=3)
        config = ReorderConfig(
            panel_height=8, force_round1=True, force_round2=True
        )
        tracer = Tracer(pid=1)
        with tracing(tracer):
            build_plan(matrix, config)
        names = {e["name"] for e in tracer.chrome_trace()["traceEvents"]}
        # The acceptance criterion: minhash -> LSH -> clustering ->
        # tiling -> (second round) all present under build_plan.
        for stage in (
            "build_plan", "minhash", "lsh1", "cluster1", "permute1",
            "tile", "sim2", "lsh2", "cluster2",
        ):
            assert stage in names, f"missing span {stage!r}"
        (root,) = tracer.to_dicts()
        assert root["name"] == "build_plan"
        child_names = [c["name"] for c in root["children"]]
        assert child_names.index("lsh1") < child_names.index("tile")

    def test_run_experiment_trace_and_stage_seconds(self, tmp_path):
        from repro.experiments import ExperimentConfig, run_experiment

        config = ExperimentConfig(scale="tiny", ks=(8,))
        tracer = Tracer(pid=1)
        records = run_experiment(config, trace=tracer)
        assert active_tracer() is None  # uninstalled on the way out
        names = {e["name"] for e in tracer.chrome_trace()["traceEvents"]}
        assert "matrix" in names
        assert "plan_rr" in names and "plan_nr" in names
        assert "build_plan" in names
        # Per-stage timings land in every record, traced or not.
        assert all(isinstance(r.stage_seconds, dict) for r in records)
        assert any("total" in r.stage_seconds for r in records)
        # stage_seconds round-trips through the JSON record format.
        from repro.experiments import load_records, save_records

        out = tmp_path / "records.json"
        save_records(records, out)
        loaded = load_records(out)
        assert loaded[0].stage_seconds == records[0].stage_seconds


class TestTraceCli:
    def test_repro_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sparse import write_matrix_market

        matrix = hidden_clusters(40, 8, 1024, 12, noise=0.1, seed=3)
        mtx = tmp_path / "demo.mtx"
        write_matrix_market(mtx, matrix)
        out = tmp_path / "demo.trace.json"
        code = main(
            ["trace", str(mtx), "--out", str(out), "--k", "16", "--runs", "2"]
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        names = {e["name"] for e in doc["traceEvents"]}
        for stage in ("build_plan", "minhash", "cluster1", "tile", "kernel.run"):
            assert stage in names
        assert all(e["ph"] == "X" for e in doc["traceEvents"])
        printed = capsys.readouterr().out
        assert "build_plan" in printed
        assert str(out) in printed
