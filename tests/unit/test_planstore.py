"""Unit tests for the plan store: LRU tier, two-tier composition, and the
``build_plan(cache=...)`` integration (warm hits must skip every expensive
stage while reproducing the cold build bit-for-bit)."""

import numpy as np
import pytest

from repro.datasets import diagonal, hidden_clusters
from repro.planstore import (
    LRUPlanCache,
    PlanDecisions,
    PlanStore,
    build_plans,
    plan_key,
)
from repro.reorder import ReorderConfig, build_plan


def _decisions(n_rows=8, total=1.0):
    plan = build_plan(diagonal(n_rows), ReorderConfig(panel_height=4))
    return PlanDecisions.from_plan(plan)


CFG = ReorderConfig(siglen=32, panel_height=8)


@pytest.fixture
def matrix():
    return hidden_clusters(16, 8, 256, 8, noise=0.1, seed=7)


class TestLRUPlanCache:
    def test_get_miss_then_hit(self):
        cache = LRUPlanCache(max_entries=4)
        assert cache.get("k1") is None
        d = _decisions()
        cache.put("k1", d)
        assert cache.get("k1") is d
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1

    def test_entry_bound_evicts_lru(self):
        cache = LRUPlanCache(max_entries=2)
        d = _decisions()
        cache.put("a", d)
        cache.put("b", d)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", d)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_byte_bound_evicts(self):
        d = _decisions(8)
        cache = LRUPlanCache(max_entries=100, max_bytes=int(d.nbytes * 2.5))
        cache.put("a", d)
        cache.put("b", d)
        assert cache.current_bytes <= cache.max_bytes
        cache.put("c", d)
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_oversized_entry_admitted_alone(self):
        d = _decisions(8)
        cache = LRUPlanCache(max_entries=4, max_bytes=1)
        cache.put("big", d)
        assert cache.get("big") is d

    def test_reput_same_key_updates_in_place(self):
        cache = LRUPlanCache(max_entries=2)
        d1, d2 = _decisions(), _decisions()
        cache.put("k", d1)
        cache.put("k", d2)
        assert len(cache) == 1
        assert cache.get("k") is d2
        assert cache.stats.evictions == 0

    def test_clear_keeps_counters(self):
        cache = LRUPlanCache()
        cache.put("k", _decisions())
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.stats.hits == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LRUPlanCache(max_entries=0)
        with pytest.raises(ValueError):
            LRUPlanCache(max_bytes=0)


class TestPlanStore:
    def test_memory_only_roundtrip(self, matrix):
        store = PlanStore()
        key = store.key_for(matrix, CFG)
        assert store.get(key) is None
        plan = build_plan(matrix, CFG)
        store.put(key, PlanDecisions.from_plan(plan))
        got = store.get(key)
        np.testing.assert_array_equal(got.row_order, plan.row_order)
        assert store.stats()["memory"]["hits"] == 1
        assert "disk" not in store.stats()

    def test_disk_promotion(self, matrix, tmp_path):
        writer = PlanStore(cache_dir=tmp_path)
        key = writer.key_for(matrix, CFG)
        writer.put(key, PlanDecisions.from_plan(build_plan(matrix, CFG)))

        reader = PlanStore(cache_dir=tmp_path)  # fresh memory tier
        assert reader.get(key) is not None      # served from disk
        assert reader.stats()["disk"]["hits"] == 1
        reader.get(key)                          # now from memory
        assert reader.stats()["memory"]["hits"] == 1
        assert reader.stats()["disk"]["hits"] == 1


class TestBuildPlanWithCache:
    def test_warm_hit_skips_all_reordering_work(self, matrix, monkeypatch):
        """A warm hit performs zero MinHash/LSH/clustering work."""
        import repro.reorder.pipeline as pipeline_mod
        from repro.similarity.lsh import LSHIndex

        store = PlanStore()
        cold = build_plan(matrix, CFG, cache=store)

        calls = {"cluster": 0, "lsh": 0}
        real_cluster = pipeline_mod.cluster_rows
        real_pairs = LSHIndex.candidate_pairs

        def counting_cluster(*args, **kwargs):
            calls["cluster"] += 1
            return real_cluster(*args, **kwargs)

        def counting_pairs(self, *args, **kwargs):
            calls["lsh"] += 1
            return real_pairs(self, *args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "cluster_rows", counting_cluster)
        monkeypatch.setattr(LSHIndex, "candidate_pairs", counting_pairs)

        warm = build_plan(matrix, CFG, cache=store)
        assert calls == {"cluster": 0, "lsh": 0}

        # Bit-identical decisions, and the timing breakdown proves no
        # pipeline stage ran.
        np.testing.assert_array_equal(warm.row_order, cold.row_order)
        np.testing.assert_array_equal(warm.remainder_order, cold.remainder_order)
        assert warm.stats == cold.stats
        stage_keys = {"lsh1", "cluster1", "permute1", "tile", "sim2", "lsh2", "cluster2"}
        assert stage_keys.isdisjoint(warm.preprocess_seconds)
        assert "materialise" in warm.preprocess_seconds
        assert "cache_lookup" in warm.preprocess_seconds
        assert warm.preprocess_seconds["cold_total"] == cold.preprocessing_time

    def test_warm_plan_is_functionally_identical(self, matrix, rng):
        store = PlanStore()
        cold = build_plan(matrix, CFG, cache=store)
        warm = build_plan(matrix, CFG, cache=store)
        warm.validate()
        X = rng.normal(size=(matrix.n_cols, 4))
        np.testing.assert_array_equal(warm.spmm(X), cold.spmm(X))

    def test_values_change_still_hits_and_stays_correct(self, matrix, rng):
        """Same pattern + new values must hit, and multiply with the *new*
        values (the cache stores decisions, never values)."""
        store = PlanStore()
        build_plan(matrix, CFG, cache=store)
        other = matrix.with_values(rng.normal(size=matrix.nnz))
        warm = build_plan(other, CFG, cache=store)
        assert store.stats()["memory"]["hits"] == 1
        warm.validate()

    def test_config_change_misses(self, matrix):
        store = PlanStore()
        build_plan(matrix, CFG, cache=store)
        build_plan(matrix, ReorderConfig(siglen=64, panel_height=8), cache=store)
        assert store.stats()["memory"]["hits"] == 0
        assert store.stats()["memory"]["misses"] == 2

    def test_cold_build_records_lookup_cost(self, matrix):
        store = PlanStore()
        plan = build_plan(matrix, CFG, cache=store)
        assert "cache_lookup" in plan.preprocess_seconds
        assert "tile" in plan.preprocess_seconds


class TestBuildPlans:
    def test_results_in_input_order_with_failures(self):
        good = diagonal(16)
        bad = object()  # not a CSRMatrix: the build must fail, not the batch
        results = build_plans([good, bad, good], ReorderConfig(panel_height=4))
        assert [r.ok for r in results] == [True, False, True]
        assert [r.index for r in results] == [0, 1, 2]
        assert results[1].plan is None
        assert results[1].error and results[1].details

    def test_cache_hits_marked(self, matrix):
        store = PlanStore()
        first = build_plans([matrix], CFG, cache=store)
        second = build_plans([matrix], CFG, cache=store)
        assert not first[0].cache_hit
        assert second[0].cache_hit
        np.testing.assert_array_equal(
            first[0].plan.row_order, second[0].plan.row_order
        )

    def test_workers_must_be_positive(self, matrix):
        with pytest.raises(ValueError):
            build_plans([matrix], CFG, workers=0)


class TestPlanKey:
    def test_key_is_ascii_hex(self, matrix):
        key = plan_key(matrix, CFG)
        assert isinstance(key, str)
        int(key, 16)  # raises if not hex


class TestRunnerWiring:
    def test_cached_sweep_identical_records_and_warm_hits(self, tmp_path):
        """A corpus sweep with plan_cache_dir set produces the same kernel
        timings as an uncached one, and a repeated sweep hits the store."""
        from repro.datasets import build_corpus
        from repro.experiments import ExperimentConfig, run_experiment

        entries = build_corpus("tiny", repeats=1, categories=("hidden", "diagonal"))
        plain_cfg = ExperimentConfig(ks=(8,), scale="tiny", repeats=1)
        cached_cfg = ExperimentConfig(
            ks=(8,), scale="tiny", repeats=1, plan_cache_dir=str(tmp_path)
        )

        plain = run_experiment(plain_cfg, entries=entries)
        cold = run_experiment(cached_cfg, entries=entries)
        warm = run_experiment(cached_cfg, entries=entries)

        for a, b, c in zip(plain, cold, warm):
            assert a.name == b.name == c.name
            assert a.spmm_aspt_rr_s == b.spmm_aspt_rr_s == c.spmm_aspt_rr_s
            assert a.sddmm_aspt_rr_s == b.sddmm_aspt_rr_s == c.sddmm_aspt_rr_s
            assert a.needs_reordering == b.needs_reordering == c.needs_reordering
        # The warm sweep found every (matrix, config) pair on disk: two
        # plans (NR + RR) per corpus entry.
        assert len(list(tmp_path.glob("*.plan.npz"))) == 2 * len(entries)
