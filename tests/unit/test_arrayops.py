"""Unit tests for repro.util.arrayops."""

import numpy as np
import pytest

from repro.util.arrayops import (
    counts_to_offsets,
    lengths_from_offsets,
    offsets_to_row_ids,
    rank_of_permutation,
    segment_max,
    segment_min,
    segment_sum,
)


class TestCountsToOffsets:
    def test_basic(self):
        out = counts_to_offsets(np.array([2, 0, 3]))
        assert out.tolist() == [0, 2, 2, 5]

    def test_empty(self):
        assert counts_to_offsets(np.array([], dtype=np.int64)).tolist() == [0]

    def test_dtype_is_int64(self):
        assert counts_to_offsets(np.array([1, 2], dtype=np.int32)).dtype == np.int64

    def test_roundtrip_with_lengths(self):
        counts = np.array([5, 0, 0, 7, 1])
        assert lengths_from_offsets(counts_to_offsets(counts)).tolist() == counts.tolist()


class TestOffsetsToRowIds:
    def test_basic(self):
        out = offsets_to_row_ids(np.array([0, 2, 2, 5]))
        assert out.tolist() == [0, 0, 2, 2, 2]

    def test_leading_empty_segment(self):
        out = offsets_to_row_ids(np.array([0, 0, 3]))
        assert out.tolist() == [1, 1, 1]

    def test_trailing_empty_segment(self):
        out = offsets_to_row_ids(np.array([0, 2, 2]))
        assert out.tolist() == [0, 0]

    def test_all_empty(self):
        assert offsets_to_row_ids(np.array([0, 0, 0])).tolist() == []

    def test_no_segments(self):
        assert offsets_to_row_ids(np.array([0])).tolist() == []

    def test_matches_naive_expansion(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 5, size=50)
        offsets = counts_to_offsets(counts)
        expected = np.repeat(np.arange(50), counts)
        np.testing.assert_array_equal(offsets_to_row_ids(offsets), expected)


class TestSegmentReductions:
    def test_segment_sum_basic(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        offsets = np.array([0, 2, 2, 5])
        assert segment_sum(values, offsets).tolist() == [3.0, 0.0, 12.0]

    def test_segment_sum_empty_values(self):
        out = segment_sum(np.array([], dtype=np.float64), np.array([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]

    def test_segment_min_with_empty_segment(self):
        values = np.array([3, 1, 2], dtype=np.int64)
        offsets = np.array([0, 2, 2, 3])
        out = segment_min(values, offsets)
        assert out[0] == 1
        assert out[1] == np.iinfo(np.int64).max
        assert out[2] == 2

    def test_segment_max_float(self):
        values = np.array([3.0, 1.0, 2.0])
        offsets = np.array([0, 1, 3])
        assert segment_max(values, offsets).tolist() == [3.0, 2.0]

    def test_segment_max_empty_is_minus_inf(self):
        out = segment_max(np.array([1.0]), np.array([0, 1, 1]))
        assert out[1] == -np.inf

    def test_against_naive_loop(self):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 6, size=30)
        offsets = counts_to_offsets(counts)
        values = rng.normal(size=int(offsets[-1]))
        got = segment_sum(values, offsets)
        for i in range(30):
            expected = values[offsets[i] : offsets[i + 1]].sum()
            assert got[i] == pytest.approx(expected)


class TestRankOfPermutation:
    def test_identity(self):
        p = np.arange(5)
        np.testing.assert_array_equal(rank_of_permutation(p), p)

    def test_inverse_property(self):
        rng = np.random.default_rng(3)
        p = rng.permutation(100)
        inv = rank_of_permutation(p)
        np.testing.assert_array_equal(inv[p], np.arange(100))
        np.testing.assert_array_equal(p[inv], np.arange(100))
