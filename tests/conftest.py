"""Shared fixtures.

``paper_matrix`` is a concrete reconstruction of the paper's running example
(Fig. 1a).  The paper never prints the full matrix, but it states enough
facts to pin one down:

* 6x6, 13 non-zeros;
* S0 = {0, 4} and S4 = {0, 3, 4} with J(S0, S4) = 2/3;
* J(S2, S4) = 1/4;
* row 1 shares exactly one column with row 5;
* in the first row panel (rows 0-2, panel height 3) only column 4 has two
  non-zeros, every other column has one — so the ASpT dense tile holds
  2 of the 13 non-zeros;
* in the second row panel every column has at most one non-zero;
* after exchanging rows 1 and 4, the dense tiles hold 9 non-zeros and the
  first (densest) column of the first panel has 3 non-zeros;
* in the remaining sparse part, rows 1&4 share a column and rows 2&5 share
  a column.

The support sets below satisfy every one of those constraints:

    S0 = {0, 4}    S1 = {1, 3, 5}    S2 = {2, 4}
    S3 = {1}       S4 = {0, 3, 4}    S5 = {2, 5}
"""

import os

import numpy as np
import pytest

# The whole suite runs with runtime contracts on (see repro.contracts), so
# every kernel/pipeline call in CI re-validates its operands.  Set both the
# environment variable (for subprocesses spawned by tests) and the runtime
# switch (in case repro.contracts was already imported without it).
os.environ.setdefault("REPRO_CONTRACTS", "1")

from repro.contracts import enable_contracts  # noqa: E402
from repro.sparse import COOMatrix, CSRMatrix  # noqa: E402

enable_contracts(os.environ["REPRO_CONTRACTS"] not in ("", "0"))

PAPER_SUPPORTS = {
    0: [0, 4],
    1: [1, 3, 5],
    2: [2, 4],
    3: [1],
    4: [0, 3, 4],
    5: [2, 5],
}


def _paper_csr() -> CSRMatrix:
    rows, cols = [], []
    for r, support in PAPER_SUPPORTS.items():
        for c in support:
            rows.append(r)
            cols.append(c)
    values = np.arange(1, len(rows) + 1, dtype=np.float64)
    return COOMatrix.from_arrays(
        (6, 6), np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), values
    ).to_csr()


@pytest.fixture
def paper_matrix() -> CSRMatrix:
    """The reconstructed Fig. 1a matrix (6x6, 13 nnz)."""
    return _paper_csr()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


def random_csr(rng, m, n, density=0.1) -> CSRMatrix:
    """Helper used across test modules: a random CSR with ~density fill."""
    nnz = max(1, int(m * n * density))
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.normal(size=nnz)
    return COOMatrix.from_arrays((m, n), rows, cols, vals).to_csr()


# --- Compiled kernel backends ------------------------------------------------
#
# The cross-backend differential matrix and the parametrized oracle tests
# run every registered backend.  Backends that are not importable in this
# environment (numba is an optional dependency, never required) skip with
# the import error as the reason instead of silently shrinking coverage.

from repro.kernels.backends import backend_names, get_backend  # noqa: E402


def _backend_params():
    params = []
    for name in backend_names():
        backend = get_backend(name)
        marks = ()
        if not backend.available():
            marks = (
                pytest.mark.skip(
                    reason=f"backend {name!r}: {backend.unavailable_reason()}"
                ),
            )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(params=_backend_params())
def backend_name(request) -> str:
    """Name of each registered *available* backend (others skip)."""
    return request.param


@pytest.fixture
def backend(backend_name):
    """The :class:`~repro.kernels.backends.KernelBackend` instance."""
    return get_backend(backend_name)


# --- Streaming construction fixture ------------------------------------------
#
# Suites parametrized with ``streamed`` run every case twice: once on the
# matrix built whole, once on the same matrix rebuilt by replaying its
# delta stream through repro.streaming.  The replay contract is exact
# (bit-for-bit), so any downstream difference between the two legs is a
# streaming bug.


@pytest.fixture(params=[False, True], ids=["whole", "streamed"])
def streamed(request) -> bool:
    """Whether to rebuild the test matrix via N delta applications."""
    return request.param


def maybe_streamed(csr, streamed, n_batches=4, seed=0):
    """``csr`` as-is, or rebuilt by replaying its delta decomposition."""
    if not streamed:
        return csr
    from repro.streaming import split_into_deltas

    out, deltas = split_into_deltas(csr, n_batches, seed=seed, grow_rows=False)
    for delta in deltas:
        out = delta.apply_to(out)
    return out


# --- Chaos-suite knobs (tests/chaos) ----------------------------------------
#
# The CI ``chaos`` job runs tests/chaos twice with pinned seeds at two
# injection rates via environment variables::
#
#     REPRO_CHAOS_RATE=0.05 REPRO_CHAOS_SEED=1337 pytest tests/chaos
#     REPRO_CHAOS_RATE=0.2  REPRO_CHAOS_SEED=2020 pytest tests/chaos
#
# Locally both default (rate 0.1, seed 42).  Every chaos test must hold the
# same contract at any rate: no crash escapes, and whatever completes is
# bitwise-correct — degraded where the report says so, identical to the
# fault-free reference everywhere else.  (These live in the top-level
# conftest because test directories carry no __init__.py: a second
# ``conftest`` module in a subdirectory would shadow this one in
# ``sys.modules`` for tests that ``from conftest import ...``.)


@pytest.fixture(scope="session")
def chaos_rate() -> float:
    """Injection probability per fault-point arrival (env-overridable)."""
    return float(os.environ.get("REPRO_CHAOS_RATE", "0.1"))


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """Injector stream seed (env-overridable; pinned in CI)."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "42"))


# --- Observability helpers ---------------------------------------------------


class FakeClock:
    """Deterministic injectable clock for tracing/timing tests.

    Every call returns the current reading and then auto-advances by
    ``step`` — so a ``with span(...)`` block whose body reads the clock
    zero times lasts exactly ``step`` seconds.  ``advance`` inserts extra
    elapsed time between calls.  Golden-trace tests pair this with
    ``Tracer(clock=FakeClock(), pid=1)`` to pin every timestamp.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step
        return reading

    def advance(self, seconds: float) -> None:
        """Insert ``seconds`` of extra elapsed time before the next read."""
        self.now += seconds


@pytest.fixture
def fake_clock() -> FakeClock:
    """A fresh :class:`FakeClock` (start 0.0, step 1.0)."""
    return FakeClock()


def pytest_collection_modifyitems(config, items):
    """Auto-mark the long-running suites so ``-m 'not slow'`` skips them."""
    for item in items:
        rel = os.fspath(item.path)
        if f"tests{os.sep}chaos" in rel or f"tests{os.sep}integration" in rel:
            item.add_marker(pytest.mark.slow)
